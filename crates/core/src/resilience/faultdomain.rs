//! Device-level fault domains for the cluster layer.
//!
//! PR 4's `FaultInjector` corrupts *blocks inside a kernel launch*; this
//! module models the next blast radius up: a whole simulated device
//! crashing (permanently or with a restart after a cooldown) or running
//! degraded (a latency multiplier on everything it executes). Plans are
//! seeded and deterministic, like [`cfmerge_gpu_sim::fault::FaultPlan`]:
//! the same seed and spec always produce the same events, so a chaos
//! scenario is reproducible down to the bit.
//!
//! Semantics (all in modeled seconds):
//!
//! * **Crash** at `t`: the device stops executing at `t` and never comes
//!   back. The job running at `t` is interrupted (the cluster migrates it
//!   from its last checkpoint, see `docs/ROBUSTNESS.md`); queued jobs
//!   wait to be stolen by surviving devices.
//! * **Crash with restart**: as crash, but the device rejoins at
//!   `t + cooldown_s` with its service state (breaker, budget) intact —
//!   the model's equivalent of a driver reset, not a reprovision.
//! * **Degrade** over `[t, t + duration_s)`: jobs *dispatched* inside the
//!   window take `multiplier ×` their modeled execution time. The
//!   multiplier is sampled at dispatch, so a job that starts inside the
//!   window stays slow for its whole run — deterministic, and honest
//!   about thermal-throttle behavior at this resolution.
//!
//! Crash events that land while the device is already down are ignored
//! when the plan is compiled into a [`DeviceTimeline`].

use cfmerge_json::{Json, ToJson};

/// What happens to the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFaultKind {
    /// Permanent whole-device loss.
    Crash,
    /// Device loss followed by a rejoin after `cooldown_s` modeled
    /// seconds.
    CrashWithRestart {
        /// Downtime before the device rejoins.
        cooldown_s: f64,
    },
    /// Latency multiplier on every job dispatched in the window.
    Degrade {
        /// Execution-time multiplier (≥ 1 to slow down).
        multiplier: f64,
        /// Window length in modeled seconds.
        duration_s: f64,
    },
}

impl DeviceFaultKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DeviceFaultKind::Crash => "crash",
            DeviceFaultKind::CrashWithRestart { .. } => "crash-restart",
            DeviceFaultKind::Degrade { .. } => "degrade",
        }
    }
}

/// One device-level fault at a modeled timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFaultEvent {
    /// When the fault strikes (modeled seconds).
    pub at_s: f64,
    /// Index of the device in the cluster.
    pub device: usize,
    /// What happens.
    pub kind: DeviceFaultKind,
}

/// A deterministic schedule of device-level faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceFaultPlan {
    events: Vec<DeviceFaultEvent>,
}

/// Shape of a generated [`DeviceFaultPlan`] (the analogue of
/// `FaultSpec` one level up).
#[derive(Debug, Clone, Copy)]
pub struct DeviceFaultSpec {
    /// Events to generate.
    pub events: usize,
    /// Of 1000 events, how many are crashes (the rest degrade).
    pub crash_permille: u32,
    /// Of 1000 crashes, how many restart after a cooldown.
    pub restart_permille: u32,
    /// Cooldown for restarting crashes.
    pub restart_cooldown_s: f64,
    /// Multiplier for degrade windows.
    pub degrade_multiplier: f64,
    /// Length of degrade windows.
    pub degrade_duration_s: f64,
}

impl Default for DeviceFaultSpec {
    /// A balanced mix on the microsecond job scale: three events, half
    /// crashes (half of those restarting), half 4× degrade windows.
    fn default() -> Self {
        Self {
            events: 3,
            crash_permille: 500,
            restart_permille: 500,
            restart_cooldown_s: 5e-5,
            degrade_multiplier: 4.0,
            degrade_duration_s: 5e-5,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeviceFaultPlan {
    /// No device-level faults (the default; fault-free cluster runs are
    /// bit-identical to the single-device service).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from explicit events, stably sorted by time (simultaneous
    /// events keep their given order).
    #[must_use]
    pub fn from_events(mut events: Vec<DeviceFaultEvent>) -> Self {
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Self { events }
    }

    /// Deterministically generate a plan for a `devices`-wide cluster
    /// over the modeled horizon `[0, horizon_s)`. Same seed, same plan.
    #[must_use]
    pub fn generate(seed: u64, devices: usize, horizon_s: f64, spec: &DeviceFaultSpec) -> Self {
        let mut state = seed ^ 0xD0DE_ADDE;
        let mut events = Vec::with_capacity(spec.events);
        if devices == 0 {
            return Self::default();
        }
        for _ in 0..spec.events {
            let device = (splitmix64(&mut state) % devices as u64) as usize;
            // Time as a dyadic fraction of the horizon: exact in f64, so
            // the plan is reproducible across platforms.
            let frac = (splitmix64(&mut state) % (1 << 20)) as f64 / (1u64 << 20) as f64;
            let at_s = frac * horizon_s;
            let kind = if splitmix64(&mut state) % 1000 < u64::from(spec.crash_permille) {
                if splitmix64(&mut state) % 1000 < u64::from(spec.restart_permille) {
                    DeviceFaultKind::CrashWithRestart { cooldown_s: spec.restart_cooldown_s }
                } else {
                    DeviceFaultKind::Crash
                }
            } else {
                DeviceFaultKind::Degrade {
                    multiplier: spec.degrade_multiplier,
                    duration_s: spec.degrade_duration_s,
                }
            };
            events.push(DeviceFaultEvent { at_s, device, kind });
        }
        Self::from_events(events)
    }

    /// The events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[DeviceFaultEvent] {
        &self.events
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl ToJson for DeviceFaultPlan {
    fn to_json(&self) -> Json {
        Json::arr(self.events.iter().map(|e| {
            let mut fields = vec![
                ("at_s", Json::from(e.at_s)),
                ("device", Json::from(e.device)),
                ("kind", Json::from(e.kind.label())),
            ];
            match e.kind {
                DeviceFaultKind::CrashWithRestart { cooldown_s } => {
                    fields.push(("cooldown_s", Json::from(cooldown_s)));
                }
                DeviceFaultKind::Degrade { multiplier, duration_s } => {
                    fields.push(("multiplier", Json::from(multiplier)));
                    fields.push(("duration_s", Json::from(duration_s)));
                }
                DeviceFaultKind::Crash => {}
            }
            Json::obj(fields)
        }))
    }
}

/// One device's compiled fault schedule: normalized downtime intervals
/// (crashes while already down are dropped) plus degrade windows. The
/// whole timeline is static — the cluster never needs to cancel events,
/// because every future crash is known at dispatch time.
#[derive(Debug, Clone, Default)]
pub struct DeviceTimeline {
    /// Downtime intervals `(start, end)`, non-overlapping, sorted;
    /// `end = None` means the device never comes back.
    downtimes: Vec<(f64, Option<f64>)>,
    /// Degrade windows `(start, end, multiplier)`.
    degrades: Vec<(f64, f64, f64)>,
}

impl DeviceTimeline {
    /// Compile the plan's events for one device.
    #[must_use]
    pub fn compile(plan: &DeviceFaultPlan, device: usize) -> Self {
        let mut downtimes: Vec<(f64, Option<f64>)> = Vec::new();
        let mut degrades = Vec::new();
        for e in plan.events() {
            if e.device != device {
                continue;
            }
            match e.kind {
                DeviceFaultKind::Degrade { multiplier, duration_s } => {
                    degrades.push((e.at_s, e.at_s + duration_s, multiplier));
                }
                DeviceFaultKind::Crash | DeviceFaultKind::CrashWithRestart { .. } => {
                    // Ignore a crash that lands while the device is
                    // already down (events are time-sorted, so only the
                    // last interval can still cover `at_s`).
                    if let Some((_, end)) = downtimes.last() {
                        match end {
                            None => continue,
                            Some(end) if e.at_s < *end => continue,
                            Some(_) => {}
                        }
                    }
                    let end = match e.kind {
                        DeviceFaultKind::CrashWithRestart { cooldown_s } => {
                            Some(e.at_s + cooldown_s)
                        }
                        _ => None,
                    };
                    downtimes.push((e.at_s, end));
                }
            }
        }
        Self { downtimes, degrades }
    }

    /// Downtime intervals `(crash_s, restart_s)` for this device.
    #[must_use]
    pub fn downtimes(&self) -> &[(f64, Option<f64>)] {
        &self.downtimes
    }

    /// The next crash strictly after `t` (the device is assumed up at
    /// `t`); returns `(crash_s, restart_s)`.
    #[must_use]
    pub fn next_crash_after(&self, t: f64) -> Option<(f64, Option<f64>)> {
        self.downtimes.iter().find(|(start, _)| *start > t).copied()
    }

    /// Whether the device is down at `t` (crash times are inclusive,
    /// restart times exclusive: a device crashing at `t` cannot accept a
    /// dispatch at `t`).
    #[must_use]
    pub fn is_down(&self, t: f64) -> bool {
        self.downtimes.iter().any(|(start, end)| *start <= t && end.is_none_or(|e| t < e))
    }

    /// Earliest time ≥ `t` at which the device is up, or `None` if it
    /// is down for good by then.
    #[must_use]
    pub fn up_at_or_after(&self, t: f64) -> Option<f64> {
        let mut at = t;
        for (start, end) in &self.downtimes {
            if *start <= at {
                match end {
                    None => return None,
                    Some(e) if at < *e => at = *e,
                    Some(_) => {}
                }
            }
        }
        Some(at)
    }

    /// Latency multiplier for a job dispatched at `t` (product of all
    /// active degrade windows; 1.0 when healthy).
    #[must_use]
    pub fn multiplier_at(&self, t: f64) -> f64 {
        let mut m = 1.0;
        for (start, end, mult) in &self.degrades {
            if *start <= t && t < *end {
                m *= mult;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(at_s: f64, device: usize) -> DeviceFaultEvent {
        DeviceFaultEvent { at_s, device, kind: DeviceFaultKind::Crash }
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = DeviceFaultSpec {
            events: 16,
            crash_permille: 600,
            restart_permille: 500,
            restart_cooldown_s: 1e-5,
            degrade_multiplier: 3.0,
            degrade_duration_s: 2e-5,
        };
        let a = DeviceFaultPlan::generate(42, 4, 1e-3, &spec);
        let b = DeviceFaultPlan::generate(42, 4, 1e-3, &spec);
        assert_eq!(a, b);
        assert_ne!(a, DeviceFaultPlan::generate(43, 4, 1e-3, &spec));
        assert!(a.events().windows(2).all(|w| w[0].at_s <= w[1].at_s));
    }

    #[test]
    fn timeline_normalizes_downtimes() {
        let plan = DeviceFaultPlan::from_events(vec![
            DeviceFaultEvent {
                at_s: 1.0,
                device: 0,
                kind: DeviceFaultKind::CrashWithRestart { cooldown_s: 2.0 },
            },
            crash(2.0, 0), // inside the first downtime: dropped
            crash(5.0, 0), // permanent
            crash(9.0, 0), // after permanent loss: dropped
            crash(0.5, 1), // other device
        ]);
        let tl = DeviceTimeline::compile(&plan, 0);
        assert_eq!(tl.downtimes(), &[(1.0, Some(3.0)), (5.0, None)]);
        assert!(!tl.is_down(0.5));
        assert!(tl.is_down(1.0), "crash time is inclusive");
        assert!(tl.is_down(2.5));
        assert!(!tl.is_down(3.0), "restart time is exclusive");
        assert!(tl.is_down(7.0));
        assert_eq!(tl.next_crash_after(0.0), Some((1.0, Some(3.0))));
        assert_eq!(tl.next_crash_after(3.0), Some((5.0, None)));
        assert_eq!(tl.next_crash_after(5.0), None);
        assert_eq!(tl.up_at_or_after(1.5), Some(3.0));
        assert_eq!(tl.up_at_or_after(6.0), None);
        assert_eq!(tl.up_at_or_after(0.0), Some(0.0));
    }

    #[test]
    fn degrade_windows_multiply() {
        let plan = DeviceFaultPlan::from_events(vec![
            DeviceFaultEvent {
                at_s: 1.0,
                device: 0,
                kind: DeviceFaultKind::Degrade { multiplier: 2.0, duration_s: 4.0 },
            },
            DeviceFaultEvent {
                at_s: 3.0,
                device: 0,
                kind: DeviceFaultKind::Degrade { multiplier: 3.0, duration_s: 1.0 },
            },
        ]);
        let tl = DeviceTimeline::compile(&plan, 0);
        assert_eq!(tl.multiplier_at(0.5), 1.0);
        assert_eq!(tl.multiplier_at(2.0), 2.0);
        assert_eq!(tl.multiplier_at(3.5), 6.0);
        assert_eq!(tl.multiplier_at(4.5), 2.0);
        assert_eq!(tl.multiplier_at(5.0), 1.0);
    }
}
