//! The multi-device cluster service: a deterministic discrete-event
//! simulation of N sort devices behind one front door.
//!
//! [`ClusterService`] drives a fleet of [`SortService`]s (one per
//! simulated device, possibly heterogeneous) over modeled time with the
//! [`EventQueue`](crate::resilience::scheduler::EventQueue) as the single
//! ordering authority. Jobs arrive on an open-loop schedule (see
//! [`crate::resilience::loadgen`]), are admitted through the *cluster's*
//! admission policy (the same typed shed decisions as the single-device
//! service, replicated one level up), shard to a home device by tenant
//! hash, and are dispatched by `(priority class, per-tenant served
//! seconds, job id)` — idle devices steal from the longest queue.
//!
//! Device-level fault domains ([`crate::resilience::faultdomain`]) layer
//! whole-device crashes, crash-with-restart, and degrade windows on top
//! of PR 4's block-granular fault injection. A job interrupted by a
//! crash migrates to a surviving compatible device from its last usable
//! checkpoint (the PR 5 checksum-validated [`SortCheckpoint`] path);
//! migrations are priced in modeled time and tallied in
//! [`ServiceCounters`]. When migration is off or impossible, the job
//! fails with a typed [`SortError::DeviceLost`] /
//! [`SortError::MigrationFailed`] — never silent corruption.
//!
//! **Parity invariant** (asserted by unit tests and
//! `tests/cluster_determinism.rs`): with device faults off, one device,
//! all arrivals at `t = 0`, and one tenant/priority class, the cluster
//! reproduces [`SortService`] bit for bit — same outcomes, same modeled
//! clock, same counters.
//!
//! **Modeling notes** (honest imperfections, also in
//! `docs/ROBUSTNESS.md`): the crash-interruption decision probes the
//! job against the device's *baseline* profile — a run whose real
//! execution is altered by budget caps or breaker quarantine is charged
//! as if the baseline run happened; a resume's deadline is checked on
//! total execution seconds without the degrade multiplier; and
//! `lost_work_s` counts all device-seconds between dispatch and crash,
//! including progress later salvaged from a checkpoint.

use cfmerge_gpu_sim::fault::FaultPlan;
use cfmerge_json::{Json, ToJson};

use crate::params::SortParams;
use crate::recovery::{
    resume_sort_robust, simulate_sort_robust_checkpointed, RobustConfig, RobustSortRun,
};
use crate::resilience::admission::{estimate_sort_seconds, ShedPolicy};
use crate::resilience::checkpoint::{CheckpointPolicy, SortCheckpoint};
use crate::resilience::faultdomain::{DeviceFaultPlan, DeviceTimeline};
use crate::resilience::loadgen::{ClusterRequest, Priority};
use crate::resilience::scheduler::EventQueue;
use crate::resilience::service::{ResilienceConfig, ServiceCounters, SortService};
use crate::sort::pipeline::SortAlgorithm;
use crate::sort::SortError;
use crate::telemetry::{MetricsRegistry, MetricsSnapshot};
use crate::tuning::{TuningPolicy, TuningTable};

/// Handle to a job submitted to a [`ClusterService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterJobId(u64);

impl std::fmt::Display for ClusterJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cjob-{}", self.0)
    }
}

/// Checkpoint-migration failover policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Whether interrupted jobs migrate at all; off, a whole-device
    /// crash turns the running job into [`SortError::DeviceLost`].
    pub enabled: bool,
    /// Migrations permitted per job before it fails with
    /// [`SortError::MigrationFailed`] (a crash-looping job must not
    /// bounce forever).
    pub max_migrations: u32,
    /// Fixed modeled cost of one migration (checkpoint transfer setup).
    pub fixed_s: f64,
    /// Per-key modeled cost of one migration (checkpoint payload).
    pub per_key_s: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self { enabled: true, max_migrations: 4, fixed_s: 5e-6, per_key_s: 1e-9 }
    }
}

impl MigrationConfig {
    /// Failover off: crashed devices take their running job with them.
    #[must_use]
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// Full cluster configuration: the device fleet, the cluster-level
/// resilience policy, the failover policy, and the device fault plan.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One robust-driver configuration per device (index = device id).
    pub devices: Vec<RobustConfig>,
    /// Cluster-level admission plus per-device breaker/budget policy.
    pub resilience: ResilienceConfig,
    /// Checkpoint-migration failover policy.
    pub migration: MigrationConfig,
    /// Device-level fault schedule.
    pub faults: DeviceFaultPlan,
}

impl ClusterConfig {
    /// `n` identical devices running `device`, everything else default
    /// (unbounded admission, migration on, no faults).
    #[must_use]
    pub fn homogeneous(n: usize, device: RobustConfig) -> Self {
        Self {
            devices: vec![device; n],
            resilience: ResilienceConfig::default(),
            migration: MigrationConfig::default(),
            faults: DeviceFaultPlan::none(),
        }
    }

    /// A single-device cluster under an explicit resilience policy (the
    /// parity configuration against [`SortService`]).
    #[must_use]
    pub fn single(device: RobustConfig, resilience: ResilienceConfig) -> Self {
        Self { resilience, ..Self::homogeneous(1, device) }
    }
}

/// A submitted job waiting to arrive/dispatch.
#[derive(Debug)]
struct PendingJob {
    id: ClusterJobId,
    label: String,
    tenant: String,
    priority: Priority,
    arrival_s: f64,
    input: Vec<u32>,
    algo: SortAlgorithm,
    plan: FaultPlan,
    deadline_s: Option<f64>,
    cancelled: bool,
}

/// One unit of dispatchable work: a fresh job, or a checkpoint resume
/// produced by migration.
#[derive(Debug)]
enum WorkItem {
    Fresh { job: PendingJob, migrations: u32 },
    Resume { job: PendingJob, checkpoint: Box<SortCheckpoint>, migrations: u32 },
}

impl WorkItem {
    fn job(&self) -> &PendingJob {
        match self {
            WorkItem::Fresh { job, .. } | WorkItem::Resume { job, .. } => job,
        }
    }

    fn migrations(&self) -> u32 {
        match self {
            WorkItem::Fresh { migrations, .. } | WorkItem::Resume { migrations, .. } => *migrations,
        }
    }

    /// Key count, for migration pricing and admission bookkeeping.
    fn n(&self) -> usize {
        match self {
            WorkItem::Fresh { job, .. } => job.input.len(),
            WorkItem::Resume { checkpoint, .. } => checkpoint.n,
        }
    }
}

/// One simulated device: its inner service, compiled fault timeline, and
/// local queue.
struct DeviceSlot {
    cfg: RobustConfig,
    svc: SortService,
    timeline: DeviceTimeline,
    queue: Vec<WorkItem>,
    up: bool,
    busy: bool,
}

impl DeviceSlot {
    /// Whether `item` may run on this device. Fresh jobs run anywhere;
    /// a checkpoint is pinned to its `(E, u)` launch configuration.
    fn compatible(&self, item: &WorkItem) -> bool {
        match item {
            WorkItem::Fresh { .. } => true,
            WorkItem::Resume { checkpoint, .. } => {
                self.cfg.base.params.e == checkpoint.e && self.cfg.base.params.u == checkpoint.u
            }
        }
    }
}

/// Everything the event loop reacts to.
enum ClusterEvent {
    /// A submitted job reaches the front door.
    Arrival(Box<PendingJob>),
    /// Device goes down (permanently or until its restart event).
    Crash(usize),
    /// Device rejoins after a crash-with-restart cooldown.
    Restart(usize),
    /// The job occupying the device finishes.
    Completion(usize),
    /// A migrated checkpoint lands in the target device's queue.
    MigrationReady { device: usize, item: Box<WorkItem> },
}

/// How one cluster job ended.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The job's handle.
    pub id: ClusterJobId,
    /// The label it was submitted under.
    pub label: String,
    /// Owning tenant.
    pub tenant: String,
    /// Priority class.
    pub priority: Priority,
    /// Device that produced the final outcome (`None` for jobs that
    /// never dispatched: shed, cancelled, invalid, or stranded).
    pub device: Option<usize>,
    /// Arrival time in modeled seconds.
    pub arrival_s: f64,
    /// Completion time in modeled seconds (equals `arrival_s` for jobs
    /// refused at the front door).
    pub completed_s: f64,
    /// Checkpoint migrations this job survived.
    pub migrations: u32,
    /// The verified run — or the typed reason there isn't one.
    pub result: Result<RobustSortRun<u32>, SortError>,
    /// The job ran on the quarantine config because its breaker was open.
    pub quarantined: bool,
    /// The job was a half-open breaker probe.
    pub probe: bool,
    /// The job ran on a `degraded`-tier rung of the device's tuning
    /// ladder (always `false` without tuning).
    pub degraded: bool,
    /// The job was a deterministic canary probe of the tuning policy's
    /// candidate rung.
    pub canary: bool,
    /// The launch parameters the device's tuning ladder ran the job on
    /// (`None` without tuning and for jobs that never executed).
    pub tuned: Option<SortParams>,
    /// The per-block retry cap the budget granted this job.
    pub retries_granted: u32,
}

impl ClusterOutcome {
    /// End-to-end modeled latency (queueing + execution).
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.arrival_s
    }
}

/// Per-tenant modeled-latency SLO summary over verified jobs
/// (nearest-rank percentiles; the reserved tenant name `"all"` is the
/// cluster-wide row).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant name (`"all"` = every tenant).
    pub tenant: String,
    /// Verified jobs in the sample.
    pub verified: u64,
    /// Median end-to-end latency in modeled seconds.
    pub p50_s: f64,
    /// 99th-percentile latency.
    pub p99_s: f64,
    /// 99.9th-percentile latency.
    pub p999_s: f64,
}

impl ToJson for TenantSlo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", Json::from(self.tenant.clone())),
            ("verified", Json::from(self.verified)),
            ("p50_s", Json::from(self.p50_s)),
            ("p99_s", Json::from(self.p99_s)),
            ("p999_s", Json::from(self.p999_s)),
        ])
    }
}

/// Per-device execution summary (from the device's inner service).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Device index.
    pub device: usize,
    /// Jobs the device's inner service executed.
    pub executed: u64,
    /// Executed jobs that verified in deadline.
    pub verified_ok: u64,
    /// Executed jobs that ended in a typed error.
    pub failed: u64,
    /// The device's inner service clock (includes idle-time syncs).
    pub clock_s: f64,
}

impl ToJson for DeviceSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("device", Json::from(self.device)),
            ("executed", Json::from(self.executed)),
            ("verified_ok", Json::from(self.verified_ok)),
            ("failed", Json::from(self.failed)),
            ("clock_s", Json::from(self.clock_s)),
        ])
    }
}

/// Everything one [`ClusterService::run`] produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-job outcomes in submission order.
    pub outcomes: Vec<ClusterOutcome>,
    /// Cluster-level tallies merged with every device's inner counters
    /// (inner `submitted`/`admitted` are zeroed first — the cluster
    /// front door already counted those jobs once).
    pub counters: ServiceCounters,
    /// Makespan: the latest modeled completion time across all jobs.
    pub clock_s: f64,
    /// Device-seconds in flight at crash instants (progress salvaged by
    /// checkpoints included — see the module docs).
    pub lost_work_s: f64,
    /// Total modeled seconds spent moving checkpoints between devices.
    pub migration_s: f64,
    /// Per-tenant SLO rows plus the cluster-wide `"all"` row.
    pub tenant_slos: Vec<TenantSlo>,
    /// Per-device execution summaries.
    pub per_device: Vec<DeviceSummary>,
    /// Frozen cluster telemetry (`None` unless
    /// [`ClusterService::enable_telemetry`] was called).
    pub telemetry: Option<MetricsSnapshot>,
}

impl ToJson for ClusterReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("devices", Json::from(self.per_device.len())),
            ("clock_s", Json::from(self.clock_s)),
            ("lost_work_s", Json::from(self.lost_work_s)),
            ("migration_s", Json::from(self.migration_s)),
            ("counters", self.counters.to_json()),
            ("tenant_slos", Json::arr(self.tenant_slos.iter().map(TenantSlo::to_json))),
            ("per_device", Json::arr(self.per_device.iter().map(DeviceSummary::to_json))),
            (
                "outcomes",
                Json::arr(self.outcomes.iter().map(|o| {
                    let mut fields = vec![
                        ("id", Json::from(o.id.to_string())),
                        ("label", Json::from(o.label.clone())),
                        ("tenant", Json::from(o.tenant.clone())),
                        ("priority", Json::from(o.priority.label())),
                        ("arrival_s", Json::from(o.arrival_s)),
                        ("completed_s", Json::from(o.completed_s)),
                        ("migrations", Json::from(u64::from(o.migrations))),
                    ];
                    if let Some(d) = o.device {
                        fields.push(("device", Json::from(d)));
                    }
                    match &o.result {
                        Ok(run) => {
                            fields.push(("ok", Json::from(true)));
                            fields.push(("seconds", Json::from(run.run.simulated_seconds)));
                            fields.push(("n", Json::from(run.run.output.len())));
                        }
                        Err(e) => {
                            fields.push(("ok", Json::from(false)));
                            fields.push(("error", e.to_json()));
                        }
                    }
                    Json::obj(fields)
                })),
            ),
        ])
    }
}

/// FNV-1a, for the deterministic tenant → home-device shard.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Nearest-rank percentile of an ascending sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The multi-device front door: submit jobs (each with a tenant,
/// priority, arrival time, optional fault plan, and optional deadline),
/// then [`ClusterService::run`] simulates the whole cluster and returns
/// a [`ClusterReport`]. Each `run` is a self-contained simulation
/// starting at modeled `t = 0`.
pub struct ClusterService {
    config: ClusterConfig,
    arrivals: Vec<PendingJob>,
    next_id: u64,
    telemetry: bool,
    tuning: Option<(TuningTable, TuningPolicy)>,
}

impl ClusterService {
    /// A cluster under `config`.
    ///
    /// # Panics
    /// Panics if the fleet is empty.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        assert!(!config.devices.is_empty(), "a cluster needs at least one device");
        Self { config, arrivals: Vec::new(), next_id: 0, telemetry: false, tuning: None }
    }

    /// Switch cluster telemetry on (the zero-cost-observer pattern:
    /// purely observational, never feeds back into modeled time).
    pub fn enable_telemetry(&mut self) {
        self.telemetry = true;
    }

    /// Install a tuning ladder on every device's inner [`SortService`]
    /// for all subsequent [`ClusterService::run`] calls. The table is
    /// verified fail-closed up front (see
    /// [`SortService::enable_tuning`]); each device then routes through
    /// its *own* ladder (matched by device name), so a heterogeneous
    /// fleet degrades per-profile.
    pub fn enable_tuning(
        &mut self,
        table: TuningTable,
        policy: TuningPolicy,
    ) -> Result<(), SortError> {
        if let Err(why) = table.verify() {
            return Err(SortError::Uncertified {
                algo: "*".to_string(),
                device: "cluster".to_string(),
                why,
            });
        }
        self.tuning = Some((table, policy));
        Ok(())
    }

    /// Submit a production job: default tenant, interactive priority,
    /// arrival at `t = 0`, no faults, no deadline.
    pub fn submit(&mut self, label: &str, input: Vec<u32>, algo: SortAlgorithm) -> ClusterJobId {
        self.submit_at(
            label,
            "default",
            Priority::Interactive,
            0.0,
            input,
            algo,
            FaultPlan::none(),
            None,
        )
    }

    /// Submit a fully specified job.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_at(
        &mut self,
        label: &str,
        tenant: &str,
        priority: Priority,
        at_s: f64,
        input: Vec<u32>,
        algo: SortAlgorithm,
        plan: FaultPlan,
        deadline_s: Option<f64>,
    ) -> ClusterJobId {
        debug_assert!(at_s.is_finite() && at_s >= 0.0, "arrivals must be at finite modeled times");
        let id = ClusterJobId(self.next_id);
        self.next_id += 1;
        self.arrivals.push(PendingJob {
            id,
            label: label.to_string(),
            tenant: tenant.to_string(),
            priority,
            arrival_s: at_s,
            input,
            algo,
            plan,
            deadline_s,
            cancelled: false,
        });
        id
    }

    /// Submit a load-generated request (see
    /// [`crate::resilience::loadgen::LoadGenConfig`]).
    pub fn submit_request(&mut self, req: ClusterRequest) -> ClusterJobId {
        self.submit_at(
            &req.label,
            &req.tenant,
            req.priority,
            req.at_s,
            req.input,
            req.algo,
            FaultPlan::none(),
            req.deadline_s,
        )
    }

    /// Cancel a job that has not run yet. Returns `false` if the id is
    /// unknown or its batch already ran.
    pub fn cancel(&mut self, id: ClusterJobId) -> bool {
        match self.arrivals.iter_mut().find(|j| j.id == id) {
            Some(job) => {
                job.cancelled = true;
                true
            }
            None => false,
        }
    }

    /// Jobs waiting for the next [`ClusterService::run`].
    #[must_use]
    pub fn pending(&self) -> usize {
        self.arrivals.len()
    }

    /// Simulate the cluster over the submitted batch and return the
    /// report. Deterministic: the same configuration and submissions
    /// always produce a bit-identical report.
    pub fn run(&mut self) -> ClusterReport {
        let slots = self
            .config
            .devices
            .iter()
            .enumerate()
            .map(|(d, cfg)| {
                // Device-local admission is unbounded: the cluster's
                // front door already made every shed decision. Breaker
                // and budget stay per-device.
                let inner = ResilienceConfig {
                    admission: crate::resilience::admission::AdmissionConfig::default(),
                    ..self.config.resilience
                };
                let mut svc = SortService::with_resilience(cfg.clone(), inner);
                if let Some((table, policy)) = &self.tuning {
                    svc.enable_tuning(table.clone(), *policy)
                        .expect("table was verified at ClusterService::enable_tuning");
                }
                DeviceSlot {
                    cfg: cfg.clone(),
                    svc,
                    timeline: DeviceTimeline::compile(&self.config.faults, d),
                    queue: Vec::new(),
                    up: true,
                    busy: false,
                }
            })
            .collect::<Vec<_>>();

        let mut sim = Sim {
            resilience: self.config.resilience,
            migration: self.config.migration,
            slots,
            eq: EventQueue::new(),
            outcomes: Vec::new(),
            served: Vec::new(),
            counters: ServiceCounters::default(),
            in_flight: 0,
            lost_work_s: 0.0,
            migration_s: 0.0,
            telemetry: if self.telemetry { Some(MetricsRegistry::new()) } else { None },
        };

        // Fault-domain events first (at equal timestamps a crash beats
        // an arrival: a device crashing at t cannot accept work at t),
        // then arrivals in submission order.
        for d in 0..sim.slots.len() {
            let downtimes = sim.slots[d].timeline.downtimes().to_vec();
            for (start, end) in downtimes {
                sim.eq.push(start, ClusterEvent::Crash(d));
                if let Some(end) = end {
                    sim.eq.push(end, ClusterEvent::Restart(d));
                }
            }
        }
        for job in std::mem::take(&mut self.arrivals) {
            sim.eq.push(job.arrival_s, ClusterEvent::Arrival(Box::new(job)));
        }
        sim.run()
    }
}

/// The running simulation (split from [`ClusterService`] so the event
/// loop can borrow its pieces independently).
struct Sim {
    resilience: ResilienceConfig,
    migration: MigrationConfig,
    slots: Vec<DeviceSlot>,
    eq: EventQueue<ClusterEvent>,
    outcomes: Vec<ClusterOutcome>,
    /// Per-tenant device-seconds served so far (fairness state; a Vec,
    /// not a map, so iteration order is deterministic).
    served: Vec<(String, f64)>,
    counters: ServiceCounters,
    /// Admitted jobs not yet finished (the cluster's queue depth for
    /// admission purposes).
    in_flight: usize,
    lost_work_s: f64,
    migration_s: f64,
    telemetry: Option<MetricsRegistry>,
}

impl Sim {
    fn run(mut self) -> ClusterReport {
        let mut now = 0.0f64;
        while let Some(ev) = self.eq.pop() {
            now = ev.at_s;
            self.handle(ev.payload, now);
            // Drain every event at exactly this timestamp before
            // dispatching, so simultaneous arrivals/crashes see one
            // consistent queue state.
            while self.eq.peek_time() == Some(now) {
                let ev = self.eq.pop().expect("peeked");
                self.handle(ev.payload, now);
            }
            self.dispatch_all(now);
        }
        self.fail_stranded(now);
        self.finish()
    }

    fn handle(&mut self, ev: ClusterEvent, now: f64) {
        match ev {
            ClusterEvent::Arrival(job) => self.admit(*job, now),
            ClusterEvent::Crash(d) => {
                self.slots[d].up = false;
                self.slots[d].busy = false;
                self.counters.device_crashes += 1;
                if let Some(reg) = &mut self.telemetry {
                    reg.inc("cluster_device_crashes_total", 1);
                }
            }
            ClusterEvent::Restart(d) => {
                self.slots[d].up = true;
                self.counters.device_restarts += 1;
                if let Some(reg) = &mut self.telemetry {
                    reg.inc("cluster_device_restarts_total", 1);
                }
            }
            ClusterEvent::Completion(d) => self.slots[d].busy = false,
            ClusterEvent::MigrationReady { device, item } => self.slots[device].queue.push(*item),
        }
    }

    /// Cluster-level admission: replicates [`SortService`]'s decisions
    /// (including the exact typed reasons) against the cluster-wide
    /// in-flight count.
    fn admit(&mut self, job: PendingJob, now: f64) {
        self.counters.submitted += 1;
        if let Some(reg) = &mut self.telemetry {
            reg.inc("cluster_jobs_submitted_total", 1);
        }
        if let Some(d) = job.deadline_s {
            if !d.is_finite() || d < 0.0 {
                self.counters.invalid_deadline += 1;
                if let Some(reg) = &mut self.telemetry {
                    reg.inc("cluster_invalid_deadline_total", 1);
                }
                self.record_unrun(job, now, SortError::InvalidDeadline { deadline_s: d });
                return;
            }
        }
        let job = match self.resilience.admission.capacity {
            Some(capacity) if self.in_flight >= capacity => {
                match self.apply_shed(job, capacity, now) {
                    Some(job) => job,
                    None => return,
                }
            }
            _ => job,
        };
        self.counters.admitted += 1;
        if let Some(reg) = &mut self.telemetry {
            reg.inc("cluster_jobs_admitted_total", 1);
        }
        if job.cancelled {
            self.counters.cancelled += 1;
            if let Some(reg) = &mut self.telemetry {
                reg.inc("cluster_jobs_cancelled_total", 1);
            }
            self.record_unrun(job, now, SortError::Cancelled);
            return;
        }
        self.in_flight += 1;
        if let Some(reg) = &mut self.telemetry {
            reg.set_gauge("cluster_inflight", self.in_flight as f64);
        }
        let home = (fnv1a(&job.tenant) % self.slots.len() as u64) as usize;
        self.slots[home].queue.push(WorkItem::Fresh { job, migrations: 0 });
    }

    /// The cluster is at capacity: decide who pays. Returns the incoming
    /// job if it was admitted.
    fn apply_shed(
        &mut self,
        incoming: PendingJob,
        capacity: usize,
        now: f64,
    ) -> Option<PendingJob> {
        match self.resilience.admission.policy {
            ShedPolicy::RejectNewest => {
                self.counters.shed_overload += 1;
                self.record_shed(incoming, now, SortError::Overloaded { capacity });
                None
            }
            ShedPolicy::RejectLargest => {
                // Largest queued-not-running fresh job, ties to the
                // newest — the same victim the single-device service
                // picks, since its queue order is id order.
                let mut victim: Option<(usize, u64, usize, usize)> = None;
                for (d, slot) in self.slots.iter().enumerate() {
                    for (pos, item) in slot.queue.iter().enumerate() {
                        if let WorkItem::Fresh { job, .. } = item {
                            if job.input.len() >= incoming.input.len() {
                                let key = (job.input.len(), job.id.0);
                                if victim.is_none_or(|(n, id, ..)| key > (n, id)) {
                                    victim = Some((key.0, key.1, d, pos));
                                }
                            }
                        }
                    }
                }
                match victim {
                    Some((n, _, d, pos)) => {
                        self.counters.shed_largest += 1;
                        self.in_flight -= 1;
                        let evicted = self.slots[d].queue.remove(pos);
                        let WorkItem::Fresh { job, .. } = evicted else { unreachable!() };
                        let err = SortError::Shed {
                            policy: ShedPolicy::RejectLargest.label(),
                            reason: format!(
                                "evicted ({n} keys) for a newer {}-key job with the queue at \
                                 capacity {capacity}",
                                incoming.input.len()
                            ),
                        };
                        self.record_shed(job, now, err);
                        Some(incoming)
                    }
                    None => {
                        self.counters.shed_overload += 1;
                        self.record_shed(incoming, now, SortError::Overloaded { capacity });
                        None
                    }
                }
            }
            ShedPolicy::DeadlineAware => {
                let base = self.slots[0].cfg.base.clone();
                let mut doomed: Vec<PendingJob> = Vec::new();
                for slot in &mut self.slots {
                    let mut i = 0;
                    while i < slot.queue.len() {
                        let unreachable = match &slot.queue[i] {
                            WorkItem::Fresh { job, .. } => job
                                .deadline_s
                                .is_some_and(|d| estimate_sort_seconds(job.input.len(), &base) > d),
                            WorkItem::Resume { .. } => false,
                        };
                        if unreachable {
                            if let WorkItem::Fresh { job, .. } = slot.queue.remove(i) {
                                doomed.push(job);
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
                if doomed.is_empty() {
                    self.counters.shed_overload += 1;
                    self.record_shed(incoming, now, SortError::Overloaded { capacity });
                    return None;
                }
                doomed.sort_by_key(|j| j.id.0);
                for job in doomed {
                    self.counters.shed_deadline += 1;
                    self.in_flight -= 1;
                    let d = job.deadline_s.expect("shed for its deadline");
                    let floor = estimate_sort_seconds(job.input.len(), &base);
                    let err = SortError::Shed {
                        policy: ShedPolicy::DeadlineAware.label(),
                        reason: format!(
                            "deadline {d:.3e}s unreachable: optimistic lower bound is {floor:.3e}s"
                        ),
                    };
                    self.record_shed(job, now, err);
                }
                Some(incoming)
            }
        }
    }

    fn record_shed(&mut self, job: PendingJob, now: f64, err: SortError) {
        if let Some(reg) = &mut self.telemetry {
            reg.inc("cluster_jobs_shed_total", 1);
        }
        self.record_unrun(job, now, err);
    }

    /// Outcome for a job that never reached a device.
    fn record_unrun(&mut self, job: PendingJob, now: f64, err: SortError) {
        self.outcomes.push(ClusterOutcome {
            id: job.id,
            label: job.label,
            tenant: job.tenant,
            priority: job.priority,
            device: None,
            arrival_s: job.arrival_s,
            completed_s: now,
            migrations: 0,
            result: Err(err),
            quarantined: false,
            probe: false,
            degraded: false,
            canary: false,
            tuned: None,
            retries_granted: 0,
        });
    }

    /// Keep handing work to free devices until nothing moves: own queue
    /// first, then steal from the longest other queue.
    fn dispatch_all(&mut self, now: f64) {
        loop {
            let mut progressed = false;
            for d in 0..self.slots.len() {
                if !self.slots[d].up || self.slots[d].busy {
                    continue;
                }
                if let Some((item, stolen)) = self.take_item_for(d) {
                    if stolen {
                        self.counters.steals += 1;
                        if let Some(reg) = &mut self.telemetry {
                            reg.inc("cluster_steals_total", 1);
                        }
                    }
                    self.dispatch_one(d, item, now);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Best compatible item for device `d`: from its own queue, else
    /// stolen from the longest other queue (ties to the lowest index).
    /// "Best" = lowest `(priority rank, tenant served-seconds, job id)`,
    /// which reduces to strict submission order when every job shares a
    /// tenant and priority — the [`SortService`] parity condition.
    fn take_item_for(&mut self, d: usize) -> Option<(WorkItem, bool)> {
        if let Some(pos) = self.best_pos(d, d) {
            return Some((self.slots[d].queue.remove(pos), false));
        }
        let mut source: Option<(usize, usize, usize)> = None; // (len, src, pos)
        for s in 0..self.slots.len() {
            if s == d {
                continue;
            }
            if let Some(pos) = self.best_pos(s, d) {
                let len = self.slots[s].queue.len();
                if source.is_none_or(|(best_len, ..)| len > best_len) {
                    source = Some((len, s, pos));
                }
            }
        }
        source.map(|(_, s, pos)| (self.slots[s].queue.remove(pos), true))
    }

    /// Position of the best item in `src`'s queue that device `dst` can
    /// run.
    fn best_pos(&self, src: usize, dst: usize) -> Option<usize> {
        let mut best: Option<(usize, (u8, f64, u64))> = None;
        for (pos, item) in self.slots[src].queue.iter().enumerate() {
            if !self.slots[dst].compatible(item) {
                continue;
            }
            let job = item.job();
            let key = (job.priority.rank(), self.served_s(&job.tenant), job.id.0);
            let better = best.as_ref().is_none_or(|(_, b)| {
                key.0.cmp(&b.0).then(key.1.total_cmp(&b.1)).then(key.2.cmp(&b.2)).is_lt()
            });
            if better {
                best = Some((pos, key));
            }
        }
        best.map(|(pos, _)| pos)
    }

    fn served_s(&self, tenant: &str) -> f64 {
        self.served.iter().find(|(t, _)| t == tenant).map_or(0.0, |(_, s)| *s)
    }

    fn add_served(&mut self, tenant: &str, seconds: f64) {
        match self.served.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, s)) => *s += seconds,
            None => self.served.push((tenant.to_string(), seconds)),
        }
    }

    fn dispatch_one(&mut self, d: usize, item: WorkItem, now: f64) {
        let mult = self.slots[d].timeline.multiplier_at(now);
        if let Some((crash_s, _)) = self.slots[d].timeline.next_crash_after(now) {
            let (elapsed, ckpts) = self.probe(d, &item);
            if now + elapsed * mult > crash_s {
                self.interrupt(d, item, now, crash_s, mult, ckpts);
                return;
            }
        }
        self.execute_on(d, item, now, mult);
    }

    /// Price the item against the device's baseline profile without
    /// touching the inner service (the crash-interruption decision).
    /// Failed probes price as 0 — a typed error "completes" instantly,
    /// before any crash.
    fn probe(&self, d: usize, item: &WorkItem) -> (f64, Vec<SortCheckpoint>) {
        match item {
            WorkItem::Fresh { job, .. } => match simulate_sort_robust_checkpointed::<u32>(
                &job.input,
                job.algo,
                &self.slots[d].cfg,
                &job.plan,
                CheckpointPolicy::every_pass(),
            ) {
                Ok((run, ckpts)) => (run.run.simulated_seconds, ckpts),
                Err(_) => (0.0, Vec::new()),
            },
            WorkItem::Resume { job, checkpoint, .. } => {
                match resume_sort_robust::<u32>(checkpoint, &self.slots[d].cfg, &job.plan) {
                    Ok(run) => (
                        (run.run.simulated_seconds - checkpoint.seconds_so_far).max(0.0),
                        Vec::new(),
                    ),
                    Err(_) => (0.0, Vec::new()),
                }
            }
        }
    }

    /// The device will crash mid-run: account the lost work, then either
    /// migrate the job (from its best pre-crash checkpoint) or fail it
    /// with a typed device-scoped error.
    fn interrupt(
        &mut self,
        d: usize,
        item: WorkItem,
        now: f64,
        crash_s: f64,
        mult: f64,
        ckpts: Vec<SortCheckpoint>,
    ) {
        self.lost_work_s += crash_s - now;
        if let Some(reg) = &mut self.telemetry {
            reg.observe_seconds("cluster_lost_work_seconds", crash_s - now);
        }
        // Checkpoints the run captured before the crash are real work
        // the cluster performed, even though the probe ran them.
        let usable = ckpts
            .into_iter()
            .filter(|c| now + c.seconds_so_far * mult <= crash_s)
            .collect::<Vec<_>>();
        self.counters.checkpoints_taken += usable.len() as u64;
        // The device stays occupied until its crash event clears it.
        self.slots[d].busy = true;

        if !self.migration.enabled {
            self.counters.device_lost += 1;
            if let Some(reg) = &mut self.telemetry {
                reg.inc("cluster_jobs_failed_total", 1);
            }
            let migrations = item.migrations();
            let job = match item {
                WorkItem::Fresh { job, .. } | WorkItem::Resume { job, .. } => job,
            };
            self.finish_failed(
                job,
                d,
                crash_s,
                migrations,
                SortError::DeviceLost {
                    device: d,
                    reason: format!("whole-device crash at {crash_s:.3e}s with migration disabled"),
                },
            );
            return;
        }
        let migrations = item.migrations() + 1;
        if migrations > self.migration.max_migrations {
            self.counters.migrations_failed += 1;
            if let Some(reg) = &mut self.telemetry {
                reg.inc("cluster_jobs_failed_total", 1);
            }
            let done = item.migrations();
            let job = match item {
                WorkItem::Fresh { job, .. } | WorkItem::Resume { job, .. } => job,
            };
            self.finish_failed(
                job,
                d,
                crash_s,
                done,
                SortError::MigrationFailed {
                    from_device: d,
                    reason: format!("migration cap {} exhausted", self.migration.max_migrations),
                },
            );
            return;
        }
        // A resume re-migrates its own checkpoint; a fresh job upgrades
        // to a resume if any checkpoint completed before the crash.
        let next = match item {
            WorkItem::Resume { job, checkpoint, .. } => {
                WorkItem::Resume { job, checkpoint, migrations }
            }
            WorkItem::Fresh { job, .. } => match usable.into_iter().next_back() {
                Some(cp) => WorkItem::Resume { job, checkpoint: Box::new(cp), migrations },
                None => WorkItem::Fresh { job, migrations },
            },
        };
        let cost = self.migration.fixed_s + self.migration.per_key_s * next.n() as f64;
        let ready = crash_s + cost;
        // Target: the compatible device that is up soonest after the
        // checkpoint lands; ties to the shortest queue, then the lowest
        // index. The crashed device itself is eligible if it restarts.
        let mut target: Option<(f64, usize, usize)> = None;
        for (t, slot) in self.slots.iter().enumerate() {
            if !slot.compatible(&next) {
                continue;
            }
            let Some(up_t) = slot.timeline.up_at_or_after(ready) else { continue };
            let key = (up_t, slot.queue.len(), t);
            let better = target.is_none_or(|b| {
                key.0.total_cmp(&b.0).then(key.1.cmp(&b.1)).then(key.2.cmp(&b.2)).is_lt()
            });
            if better {
                target = Some(key);
            }
        }
        match target {
            Some((_, _, t)) => {
                self.counters.migrations += 1;
                self.migration_s += cost;
                if let Some(reg) = &mut self.telemetry {
                    reg.inc("cluster_migrations_total", 1);
                    reg.observe_seconds("cluster_migration_seconds", cost);
                }
                self.eq
                    .push(ready, ClusterEvent::MigrationReady { device: t, item: Box::new(next) });
            }
            None => {
                self.counters.migrations_failed += 1;
                if let Some(reg) = &mut self.telemetry {
                    reg.inc("cluster_jobs_failed_total", 1);
                }
                let done = next.migrations() - 1;
                let job = match next {
                    WorkItem::Fresh { job, .. } | WorkItem::Resume { job, .. } => job,
                };
                self.finish_failed(
                    job,
                    d,
                    crash_s,
                    done,
                    SortError::MigrationFailed {
                        from_device: d,
                        reason: "no surviving compatible device".to_string(),
                    },
                );
            }
        }
    }

    /// Outcome for a job killed by the fault domain (typed, counted,
    /// removed from flight).
    fn finish_failed(
        &mut self,
        job: PendingJob,
        d: usize,
        at_s: f64,
        migrations: u32,
        err: SortError,
    ) {
        self.in_flight -= 1;
        if let Some(reg) = &mut self.telemetry {
            reg.set_gauge("cluster_inflight", self.in_flight as f64);
        }
        self.outcomes.push(ClusterOutcome {
            id: job.id,
            label: job.label,
            tenant: job.tenant,
            priority: job.priority,
            device: Some(d),
            arrival_s: job.arrival_s,
            completed_s: at_s,
            migrations,
            result: Err(err),
            quarantined: false,
            probe: false,
            degraded: false,
            canary: false,
            tuned: None,
            retries_granted: 0,
        });
    }

    /// Run the item on device `d`'s inner service and record its
    /// outcome. The device is occupied for the job's *device* seconds
    /// (total minus the checkpointed prefix) scaled by any degrade
    /// multiplier.
    fn execute_on(&mut self, d: usize, item: WorkItem, now: f64, mult: f64) {
        let slot = &mut self.slots[d];
        // An idle device still saw modeled time pass: budget refill and
        // breaker cooldowns are functions of the cluster clock.
        slot.svc.sync_clock(now);
        let (job, migrations, s0, outcome) = match item {
            WorkItem::Fresh { mut job, migrations } => {
                let input = std::mem::take(&mut job.input);
                slot.svc.submit_with_faults(
                    &job.label,
                    input,
                    job.algo,
                    job.plan.clone(),
                    job.deadline_s,
                );
                let o = slot.svc.drain().pop().expect("one job submitted");
                (job, migrations, 0.0, o)
            }
            WorkItem::Resume { job, checkpoint, migrations } => {
                let s0 = checkpoint.seconds_so_far;
                slot.svc.submit_resume(&job.label, *checkpoint, job.plan.clone(), job.deadline_s);
                let o = slot.svc.drain().pop().expect("one job submitted");
                (job, migrations, s0, o)
            }
        };
        // The inner clock advanced by the job's execution seconds (a
        // deadline miss still advances by the time it burned); the
        // device itself is only occupied for the un-checkpointed suffix.
        let elapsed_exec = match &outcome.result {
            Ok(run) => run.run.simulated_seconds,
            Err(SortError::DeadlineExceeded { needed_s, .. }) => *needed_s,
            Err(_) => 0.0,
        };
        let eff = (elapsed_exec - s0).max(0.0) * mult;
        let completed_s = now + eff;
        self.add_served(&job.tenant, eff);
        self.in_flight -= 1;
        if let Some(reg) = &mut self.telemetry {
            reg.inc("cluster_jobs_executed_total", 1);
            match &outcome.result {
                Ok(_) => {
                    reg.inc("cluster_jobs_verified_total", 1);
                    reg.observe_seconds("cluster_job_latency_seconds", completed_s - job.arrival_s);
                    let name =
                        format!("cluster_tenant_{}_latency_seconds", job.tenant.replace('-', "_"));
                    reg.observe_seconds(&name, completed_s - job.arrival_s);
                }
                Err(_) => reg.inc("cluster_jobs_failed_total", 1),
            }
            reg.set_gauge("cluster_inflight", self.in_flight as f64);
        }
        self.outcomes.push(ClusterOutcome {
            id: job.id,
            label: job.label,
            tenant: job.tenant,
            priority: job.priority,
            device: Some(d),
            arrival_s: job.arrival_s,
            completed_s,
            migrations,
            result: outcome.result,
            quarantined: outcome.quarantined,
            probe: outcome.probe,
            degraded: outcome.degraded,
            canary: outcome.canary,
            tuned: outcome.tuned,
            retries_granted: outcome.retries_granted,
        });
        if eff > 0.0 {
            self.slots[d].busy = true;
            self.eq.push(completed_s, ClusterEvent::Completion(d));
        }
    }

    /// The event queue is dry but work is still queued: every surviving
    /// device is either permanently down or incompatible. Fail each
    /// stranded item with a typed device-scoped error, in id order.
    fn fail_stranded(&mut self, now: f64) {
        let mut stranded: Vec<(usize, WorkItem)> = Vec::new();
        for (d, slot) in self.slots.iter_mut().enumerate() {
            for item in slot.queue.drain(..) {
                stranded.push((d, item));
            }
        }
        stranded.sort_by_key(|(_, item)| item.job().id.0);
        for (d, item) in stranded {
            self.counters.device_lost += 1;
            if let Some(reg) = &mut self.telemetry {
                reg.inc("cluster_jobs_failed_total", 1);
            }
            let migrations = item.migrations();
            let job = match item {
                WorkItem::Fresh { job, .. } | WorkItem::Resume { job, .. } => job,
            };
            self.finish_failed(
                job,
                d,
                now,
                migrations,
                SortError::DeviceLost {
                    device: d,
                    reason: "queued on a dead device with no surviving compatible device"
                        .to_string(),
                },
            );
            // finish_failed already counted the flight; device_lost was
            // counted above.
        }
    }

    fn finish(mut self) -> ClusterReport {
        self.outcomes.sort_by_key(|o| o.id.0);
        let clock_s = self.outcomes.iter().map(|o| o.completed_s).fold(0.0, f64::max);
        let mut counters = self.counters;
        let mut per_device = Vec::new();
        for (d, slot) in self.slots.iter().enumerate() {
            let mut inner = *slot.svc.counters();
            per_device.push(DeviceSummary {
                device: d,
                executed: inner.executed,
                verified_ok: inner.verified_ok,
                failed: inner.failed,
                clock_s: slot.svc.clock_s(),
            });
            // The cluster front door already counted every submission
            // and admission once.
            inner.submitted = 0;
            inner.admitted = 0;
            counters.merge(&inner);
        }
        let tenant_slos = Self::compute_slos(&self.outcomes);
        if let Some(reg) = &mut self.telemetry {
            reg.set_gauge("cluster_clock_seconds", clock_s);
        }
        ClusterReport {
            telemetry: self.telemetry.as_ref().map(MetricsRegistry::snapshot),
            outcomes: self.outcomes,
            counters,
            clock_s,
            lost_work_s: self.lost_work_s,
            migration_s: self.migration_s,
            tenant_slos,
            per_device,
        }
    }

    /// Per-tenant (sorted by name) plus cluster-wide latency SLOs over
    /// verified outcomes. Computed from the outcomes directly — the SLO
    /// rows exist whether or not telemetry was enabled.
    fn compute_slos(outcomes: &[ClusterOutcome]) -> Vec<TenantSlo> {
        let slo = |tenant: &str, mut lats: Vec<f64>| {
            lats.sort_by(|a, b| a.total_cmp(b));
            TenantSlo {
                tenant: tenant.to_string(),
                verified: lats.len() as u64,
                p50_s: percentile(&lats, 0.50),
                p99_s: percentile(&lats, 0.99),
                p999_s: percentile(&lats, 0.999),
            }
        };
        let mut tenants: Vec<&str> = outcomes.iter().map(|o| o.tenant.as_str()).collect();
        tenants.sort_unstable();
        tenants.dedup();
        let mut rows = Vec::with_capacity(tenants.len() + 1);
        for t in tenants {
            let lats = outcomes
                .iter()
                .filter(|o| o.tenant == t && o.result.is_ok())
                .map(ClusterOutcome::latency_s)
                .collect();
            rows.push(slo(t, lats));
        }
        let all =
            outcomes.iter().filter(|o| o.result.is_ok()).map(ClusterOutcome::latency_s).collect();
        rows.push(slo("all", all));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::InputSpec;
    use crate::params::SortParams;
    use crate::recovery::simulate_sort_robust;
    use crate::resilience::admission::AdmissionConfig;
    use crate::resilience::faultdomain::{DeviceFaultEvent, DeviceFaultKind};
    use crate::sort::pipeline::SortConfig;

    fn rcfg() -> RobustConfig {
        RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
    }

    /// Where the default tenant homes in an `n`-device fleet.
    fn home_of(n: usize) -> usize {
        (fnv1a("default") % n as u64) as usize
    }

    #[test]
    fn n1_fault_free_cluster_matches_sort_service() {
        // (a) bounded RejectLargest admission, exactly the single-device
        // service's scenario; (b) unbounded with a deadline miss, a
        // cancel, and an invalid deadline.
        let small = InputSpec::UniformRandom { seed: 44 }.generate(160);
        let big = InputSpec::UniformRandom { seed: 45 }.generate(8 * 160);
        let huge = InputSpec::UniformRandom { seed: 46 }.generate(16 * 160);
        let resilience = ResilienceConfig {
            admission: AdmissionConfig::bounded(2, ShedPolicy::RejectLargest),
            ..ResilienceConfig::default()
        };

        let mut svc = SortService::with_resilience(rcfg(), resilience);
        svc.submit("small", small.clone(), SortAlgorithm::CfMerge);
        svc.submit("big", big.clone(), SortAlgorithm::CfMerge);
        svc.submit("newcomer", small.clone(), SortAlgorithm::CfMerge);
        svc.submit("huge", huge.clone(), SortAlgorithm::CfMerge);
        let svc_out = svc.drain();

        let mut cluster = ClusterService::new(ClusterConfig::single(rcfg(), resilience));
        cluster.submit("small", small.clone(), SortAlgorithm::CfMerge);
        cluster.submit("big", big, SortAlgorithm::CfMerge);
        cluster.submit("newcomer", small, SortAlgorithm::CfMerge);
        cluster.submit("huge", huge, SortAlgorithm::CfMerge);
        let report = cluster.run();

        assert_eq!(report.outcomes.len(), svc_out.len());
        for (c, s) in report.outcomes.iter().zip(&svc_out) {
            match (&c.result, &s.result) {
                (Ok(cr), Ok(sr)) => {
                    assert_eq!(cr.run.output, sr.run.output);
                    assert_eq!(cr.run.simulated_seconds, sr.run.simulated_seconds);
                }
                (Err(ce), Err(se)) => assert_eq!(ce.to_string(), se.to_string()),
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
        assert_eq!(report.clock_s, svc.clock_s());
        assert_eq!(report.per_device[0].clock_s, svc.clock_s());
        assert_eq!(report.counters, *svc.counters());

        // (b) deadlines, cancels, invalid deadlines — unbounded.
        let input = InputSpec::UniformRandom { seed: 18 }.generate(2 * 160);
        let mut svc = SortService::new(rcfg());
        svc.submit("ok", input.clone(), SortAlgorithm::CfMerge);
        let cancel = svc.submit("cancel-me", input.clone(), SortAlgorithm::CfMerge);
        svc.submit_with_faults(
            "tight",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(1e-12),
        );
        svc.submit_with_faults(
            "bad",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(-1.0),
        );
        svc.cancel(cancel);
        let svc_out = svc.drain();

        let mut cluster =
            ClusterService::new(ClusterConfig::single(rcfg(), ResilienceConfig::default()));
        cluster.submit("ok", input.clone(), SortAlgorithm::CfMerge);
        let ccancel = cluster.submit("cancel-me", input.clone(), SortAlgorithm::CfMerge);
        cluster.submit_at(
            "tight",
            "default",
            Priority::Interactive,
            0.0,
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(1e-12),
        );
        cluster.submit_at(
            "bad",
            "default",
            Priority::Interactive,
            0.0,
            input,
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(-1.0),
        );
        assert!(cluster.cancel(ccancel));
        let report = cluster.run();

        for (c, s) in report.outcomes.iter().zip(&svc_out) {
            match (&c.result, &s.result) {
                (Ok(cr), Ok(sr)) => assert_eq!(cr.run.simulated_seconds, sr.run.simulated_seconds),
                (Err(ce), Err(se)) => assert_eq!(ce.to_string(), se.to_string()),
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
        assert_eq!(report.clock_s, svc.clock_s());
        assert_eq!(report.counters, *svc.counters());
    }

    #[test]
    fn crash_migrates_checkpoint_to_surviving_device() {
        let input = InputSpec::UniformRandom { seed: 91 }.generate(8 * 160 + 3);
        let solo =
            simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg(), &FaultPlan::none())
                .expect("baseline run");
        let total = solo.run.simulated_seconds;
        let home = home_of(2);

        let mut cfg = ClusterConfig::homogeneous(2, rcfg());
        cfg.faults = DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
            at_s: 0.7 * total,
            device: home,
            kind: DeviceFaultKind::Crash,
        }]);
        let mut cluster = ClusterService::new(cfg);
        cluster.submit("victim", input.clone(), SortAlgorithm::CfMerge);
        let report = cluster.run();

        let o = &report.outcomes[0];
        let run = o.result.as_ref().expect("job survives via checkpoint migration");
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(run.run.output, expect, "migrated job must produce uncorrupted output");
        assert_eq!(o.device, Some(1 - home));
        assert_eq!(o.migrations, 1);
        assert_eq!(report.counters.device_crashes, 1);
        assert_eq!(report.counters.migrations, 1);
        assert_eq!(
            report.counters.resumed, 1,
            "migration resumes the checkpoint, not a cold restart"
        );
        assert!(report.counters.checkpoints_taken >= 1);
        assert!(report.lost_work_s > 0.0);
        assert!(report.migration_s > 0.0);
        assert!(o.completed_s > 0.7 * total);
    }

    #[test]
    fn crash_without_migration_is_typed_device_lost() {
        let input = InputSpec::UniformRandom { seed: 92 }.generate(8 * 160);
        let solo =
            simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg(), &FaultPlan::none())
                .expect("baseline run");
        let home = home_of(2);

        let mut cfg = ClusterConfig::homogeneous(2, rcfg());
        cfg.migration = MigrationConfig::disabled();
        cfg.faults = DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
            at_s: 0.5 * solo.run.simulated_seconds,
            device: home,
            kind: DeviceFaultKind::Crash,
        }]);
        let mut cluster = ClusterService::new(cfg);
        cluster.submit("doomed", input, SortAlgorithm::CfMerge);
        let report = cluster.run();

        let o = &report.outcomes[0];
        assert!(
            matches!(&o.result, Err(SortError::DeviceLost { device, .. }) if *device == home),
            "expected DeviceLost, got {:?}",
            o.result
        );
        assert_eq!(report.counters.device_lost, 1);
        assert_eq!(report.counters.migrations, 0);
        assert_eq!(report.counters.verified_ok, 0);
    }

    #[test]
    fn idle_devices_steal_queued_work() {
        let mut cluster = ClusterService::new(ClusterConfig::homogeneous(2, rcfg()));
        for i in 0..6 {
            let input = InputSpec::UniformRandom { seed: 100 + i }.generate(2 * 160);
            cluster.submit(&format!("job-{i}"), input, SortAlgorithm::CfMerge);
        }
        let report = cluster.run();
        assert_eq!(report.counters.verified_ok, 6);
        assert!(
            report.counters.steals >= 1,
            "one tenant homes to one device; the other must steal"
        );
        assert!(report.per_device.iter().all(|d| d.executed >= 1), "{:?}", report.per_device);
        // Two devices working in parallel beat one device's serial sum.
        let serial: f64 = report
            .outcomes
            .iter()
            .map(|o| o.result.as_ref().expect("ok").run.simulated_seconds)
            .sum();
        assert!(report.clock_s < serial);
    }

    #[test]
    fn crash_with_restart_migrates_back_onto_the_same_device() {
        let input = InputSpec::UniformRandom { seed: 93 }.generate(8 * 160 + 1);
        let solo =
            simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg(), &FaultPlan::none())
                .expect("baseline run");
        let total = solo.run.simulated_seconds;

        let mut cfg = ClusterConfig::homogeneous(1, rcfg());
        cfg.faults = DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
            at_s: 0.5 * total,
            device: 0,
            kind: DeviceFaultKind::CrashWithRestart { cooldown_s: total },
        }]);
        let mut cluster = ClusterService::new(cfg);
        cluster.submit("phoenix", input.clone(), SortAlgorithm::CfMerge);
        let report = cluster.run();

        let o = &report.outcomes[0];
        let run = o.result.as_ref().expect("job survives the restart");
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(run.run.output, expect);
        assert_eq!(o.device, Some(0));
        assert_eq!(report.counters.device_crashes, 1);
        assert_eq!(report.counters.device_restarts, 1);
        assert_eq!(report.counters.migrations, 1);
        assert!(o.completed_s >= 1.5 * total, "completion waits for the restart");
    }

    #[test]
    fn degraded_devices_stretch_completion_time() {
        let input = InputSpec::UniformRandom { seed: 94 }.generate(4 * 160);
        let solo =
            simulate_sort_robust(&input, SortAlgorithm::CfMerge, &rcfg(), &FaultPlan::none())
                .expect("baseline run");
        let mut cfg = ClusterConfig::homogeneous(1, rcfg());
        cfg.faults = DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
            at_s: 0.0,
            device: 0,
            kind: DeviceFaultKind::Degrade { multiplier: 3.0, duration_s: 1.0 },
        }]);
        let mut cluster = ClusterService::new(cfg);
        cluster.submit("slow", input, SortAlgorithm::CfMerge);
        let report = cluster.run();
        let o = &report.outcomes[0];
        assert!(o.result.is_ok());
        let expected = 3.0 * solo.run.simulated_seconds;
        assert!(
            (o.completed_s - expected).abs() < 1e-12,
            "degrade multiplier must scale device time: {} vs {expected}",
            o.completed_s
        );
    }

    #[test]
    fn reports_are_bit_stable_across_runs() {
        let build = || {
            let mut cfg = ClusterConfig::homogeneous(2, rcfg());
            cfg.faults = DeviceFaultPlan::from_events(vec![DeviceFaultEvent {
                at_s: 1e-5,
                device: 0,
                kind: DeviceFaultKind::CrashWithRestart { cooldown_s: 2e-5 },
            }]);
            let mut cluster = ClusterService::new(cfg);
            cluster.enable_telemetry();
            let stream = crate::resilience::loadgen::LoadGenConfig::steady(7, 12, 5e4);
            for req in stream.generate() {
                cluster.submit_request(req);
            }
            cluster.run()
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty(),
            "cluster reports must be bit-stable"
        );
        assert_eq!(a.counters, b.counters);
        let ta = a.telemetry.expect("telemetry on").to_json().to_string_pretty();
        let tb = b.telemetry.expect("telemetry on").to_json().to_string_pretty();
        assert_eq!(ta, tb);
    }

    #[test]
    fn heterogeneous_fleet_tunes_per_device_profile() {
        use crate::cert::build_certificate_table;
        use crate::tuning::{build_tuning_table, RungTier, TuningPolicy};
        use cfmerge_gpu_sim::device::Device;

        // Device 0 is the rtx profile (certified cf ladder), device 1
        // the 64-bit-bank profile (every cf rung degraded tier): each
        // device must route through its *own* ladder.
        let table = build_tuning_table(&build_certificate_table());
        let rtx = RobustConfig::new(SortConfig::paper_e17_u256());
        let kepler = RobustConfig::new(SortConfig {
            device: Device::kepler_64bit_like(),
            ..SortConfig::paper_e17_u256()
        });
        let mut cfg = ClusterConfig::homogeneous(2, rtx.clone());
        cfg.devices = vec![rtx.clone(), kepler.clone()];
        let mut cluster = ClusterService::new(cfg);
        cluster.enable_tuning(table.clone(), TuningPolicy::default()).expect("table verifies");

        let input = InputSpec::UniformRandom { seed: 95 }.generate(4500);
        for i in 0..4 {
            cluster.submit(&format!("job-{i}"), input.clone(), SortAlgorithm::CfMerge);
        }
        cluster.submit("thrust-job", input, SortAlgorithm::ThrustMergesort);
        let report = cluster.run();

        let device_of = |d: usize| if d == 0 { &rtx } else { &kepler };
        for o in &report.outcomes {
            if o.label == "thrust-job" {
                // No certified thrust rung exists on any profile.
                assert!(matches!(&o.result, Err(SortError::Uncertified { .. })));
                assert_eq!(o.tuned, None);
                continue;
            }
            assert!(o.result.is_ok(), "{}: {:?}", o.label, o.result);
            let d = o.device.expect("executed jobs name their device");
            let dev_name = &device_of(d).base.device.name;
            let ladder = table.ladder_for(dev_name, "cf-merge").expect("cf ladder");
            let params = o.tuned.expect("tuned jobs record their params");
            let rung = ladder.rung_for(params).expect("executed config is on the ladder");
            assert_eq!(o.degraded, rung.tier == RungTier::Degraded);
        }
        // Both tiers were actually exercised: work landed on each device.
        assert!(report.outcomes.iter().any(|o| o.degraded));
        assert!(report.outcomes.iter().any(|o| o.tuned.is_some() && !o.degraded));
        assert_eq!(report.counters.uncertified_rejected, 1);
        assert_eq!(report.counters.tuned_jobs, 4);
    }
}
