//! Service-level resilience for the sort service: admission control and
//! load shedding, per-config circuit breakers, a service-wide retry
//! budget, straggler hedging, and checkpoint/resume.
//!
//! Every mechanism is deterministic and priced in the modeled timing
//! domain — there is no wall-clock anywhere. With everything at its
//! default (off), the service and the robust driver behave bit for bit
//! like they did before this module existed; `docs/ROBUSTNESS.md` has
//! the policy matrix.

pub mod admission;
pub mod breaker;
pub mod budget;
pub mod checkpoint;
pub mod hedge;
pub mod service;

pub use admission::{estimate_sort_seconds, AdmissionConfig, ShedPolicy};
pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, Route};
pub use budget::{RetryBudget, RetryBudgetConfig};
pub use checkpoint::{CheckpointPolicy, SortCheckpoint, CHECKPOINT_VERSION};
pub use hedge::{HedgeConfig, HedgeCounters};
pub use service::{
    aggregate_counters, JobId, JobOutcome, ResilienceConfig, ServiceCounters, SortService,
};
