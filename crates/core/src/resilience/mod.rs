//! Service-level resilience for the sort service: admission control and
//! load shedding, per-config circuit breakers, a service-wide retry
//! budget, straggler hedging, checkpoint/resume — and, one level up, the
//! multi-device cluster service with deterministic event scheduling,
//! device fault domains, and checkpoint-migration failover.
//!
//! Every mechanism is deterministic and priced in the modeled timing
//! domain — there is no wall-clock anywhere. With everything at its
//! default (off), the service and the robust driver behave bit for bit
//! like they did before this module existed; `docs/ROBUSTNESS.md` has
//! the policy matrix and the cluster architecture.

pub mod admission;
pub mod breaker;
pub mod budget;
pub mod checkpoint;
pub mod cluster;
pub mod faultdomain;
pub mod hedge;
pub mod loadgen;
pub mod scheduler;
pub mod service;

pub use admission::{estimate_sort_seconds, AdmissionConfig, ShedPolicy};
pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, Route};
pub use budget::{RetryBudget, RetryBudgetConfig};
pub use checkpoint::{CheckpointPolicy, SortCheckpoint, CHECKPOINT_VERSION};
pub use cluster::{
    ClusterConfig, ClusterJobId, ClusterOutcome, ClusterReport, ClusterService, DeviceSummary,
    MigrationConfig, TenantSlo,
};
pub use faultdomain::{
    DeviceFaultEvent, DeviceFaultKind, DeviceFaultPlan, DeviceFaultSpec, DeviceTimeline,
};
pub use hedge::{HedgeConfig, HedgeCounters};
pub use loadgen::{ClusterRequest, LoadGenConfig, Priority, TrafficShape};
pub use scheduler::{Event, EventQueue};
pub use service::{
    aggregate_counters, JobId, JobOutcome, ResilienceConfig, ServiceCounters, SortService,
};
