//! The resilient batch sort service: admission control, circuit
//! breakers, a service-wide retry budget, and checkpoint/resume layered
//! over the robust driver.
//!
//! Everything here is deterministic. [`SortService::drain`] executes the
//! batch *sequentially in submission order* (each job is internally
//! parallel via the robust driver), and the service clock advances by
//! each completed job's modeled seconds — so breaker cooldowns, budget
//! refill, and probe scheduling are pure functions of the job sequence.
//! With the default [`ResilienceConfig`] (everything off) the service
//! behaves exactly like the legacy batch front-end.

use cfmerge_gpu_sim::fault::FaultPlan;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

use crate::params::SortParams;
use crate::recovery::{
    resume_sort_robust, simulate_sort_robust, simulate_sort_robust_checkpointed, RecoveryCounters,
    RobustConfig, RobustSortRun,
};
use crate::resilience::admission::{estimate_sort_seconds, AdmissionConfig, ShedPolicy};
use crate::resilience::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Route};
use crate::resilience::budget::{RetryBudget, RetryBudgetConfig};
use crate::resilience::checkpoint::{CheckpointPolicy, SortCheckpoint};
use crate::sort::pipeline::SortAlgorithm;
use crate::sort::SortError;
use crate::telemetry::{MetricsRegistry, MetricsSnapshot};
use crate::tuning::{RungTier, TuningPolicy, TuningTable};

/// Handle to a job submitted to a [`SortService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The service's resilience policy; the default switches every mechanism
/// off, which reproduces the legacy service bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Queue bound and shed policy.
    pub admission: AdmissionConfig,
    /// Service-wide retry token bucket.
    pub retry_budget: RetryBudgetConfig,
    /// Per-(pipeline, launch-config) circuit breakers.
    pub breaker: BreakerConfig,
}

/// What a job sorts: fresh input, or a checkpoint to resume.
enum Payload {
    Fresh { input: Vec<u32>, algo: SortAlgorithm },
    Resume { checkpoint: Box<SortCheckpoint> },
}

struct Job {
    id: JobId,
    label: String,
    payload: Payload,
    plan: FaultPlan,
    deadline_s: Option<f64>,
    cancelled: bool,
    checkpoint_policy: CheckpointPolicy,
    /// Set at admission time when the job was refused or shed; such jobs
    /// never execute, not even partially.
    pre_shed: Option<SortError>,
    /// Key count, for admission sizing.
    n: usize,
}

impl Job {
    fn admitted(&self) -> bool {
        self.pre_shed.is_none() && !self.cancelled
    }

    fn algo_label(&self) -> String {
        match &self.payload {
            Payload::Fresh { algo, .. } => algo.label().to_string(),
            Payload::Resume { checkpoint } => checkpoint.algorithm.clone(),
        }
    }
}

/// How one service job ended.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's handle.
    pub id: JobId,
    /// The label it was submitted under.
    pub label: String,
    /// The verified run — or the typed reason there isn't one.
    pub result: Result<RobustSortRun<u32>, SortError>,
    /// The job ran on the quarantine config because its breaker was
    /// open.
    pub quarantined: bool,
    /// The job was a half-open breaker probe.
    pub probe: bool,
    /// The job ran on a `degraded`-tier rung of the tuning ladder — a
    /// certified bounded-degree config that is *not* conflict-free.
    /// Always `false` without tuning (the explicit marker the ladder
    /// contract requires).
    pub degraded: bool,
    /// The job was a deterministic canary probe of the tuning policy's
    /// candidate rung.
    pub canary: bool,
    /// The launch parameters the tuning ladder actually ran the job on
    /// (`None` without tuning, for resumes, and for fail-closed
    /// rejections).
    pub tuned: Option<SortParams>,
    /// The per-block retry cap the budget granted this job.
    pub retries_granted: u32,
    /// Checkpoints captured during the run (empty unless the job was
    /// submitted with a non-noop [`CheckpointPolicy`]).
    pub checkpoints: Vec<SortCheckpoint>,
}

impl JobOutcome {
    /// The job's recovery counters; for failed jobs, a zeroed set with
    /// `unrecovered = 1` when the failure was an unrecoverable fault.
    #[must_use]
    pub fn counters(&self) -> RecoveryCounters {
        match &self.result {
            Ok(run) => run.report.counters,
            Err(SortError::UnrecoverableFault { .. }) => {
                RecoveryCounters { unrecovered: 1, ..RecoveryCounters::default() }
            }
            Err(_) => RecoveryCounters::default(),
        }
    }
}

/// Sum the counters of a batch of outcomes (the artifact-level "N
/// injected / N detected / N recovered" statement).
#[must_use]
pub fn aggregate_counters(outcomes: &[JobOutcome]) -> RecoveryCounters {
    let mut total = RecoveryCounters::default();
    for o in outcomes {
        total.merge(&o.counters());
    }
    total
}

/// Lifetime tallies of every resilience decision the service made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs ever submitted (sheds and cancels included).
    pub submitted: u64,
    /// Jobs the queue accepted (some may be shed later by
    /// [`ShedPolicy::RejectLargest`] / [`ShedPolicy::DeadlineAware`]).
    pub admitted: u64,
    /// Jobs that actually ran the robust driver.
    pub executed: u64,
    /// Executed jobs that returned a verified sorted output in deadline.
    pub verified_ok: u64,
    /// Executed jobs that ended in a typed error.
    pub failed: u64,
    /// Jobs cancelled before execution.
    pub cancelled: u64,
    /// Incoming jobs refused with [`SortError::Overloaded`].
    pub shed_overload: u64,
    /// Queued jobs evicted by [`ShedPolicy::RejectLargest`].
    pub shed_largest: u64,
    /// Queued jobs shed by [`ShedPolicy::DeadlineAware`].
    pub shed_deadline: u64,
    /// Submissions refused with [`SortError::InvalidDeadline`].
    pub invalid_deadline: u64,
    /// Jobs whose retry cap was reduced by the budget.
    pub budget_denied: u64,
    /// Breaker transitions into `Open`.
    pub breaker_opens: u64,
    /// Breaker transitions into `HalfOpen`.
    pub breaker_half_opens: u64,
    /// Breaker transitions into `Closed`.
    pub breaker_closes: u64,
    /// Jobs routed to the quarantine config by an open breaker.
    pub quarantined: u64,
    /// Jobs run as half-open breaker probes.
    pub probes: u64,
    /// Checkpoint-resume jobs executed.
    pub resumed: u64,
    /// Checkpoints captured across all jobs.
    pub checkpoints_taken: u64,
    /// Whole-device crash events observed by the cluster layer.
    pub device_crashes: u64,
    /// Devices that rejoined after a crash-with-restart cooldown.
    pub device_restarts: u64,
    /// Jobs that ended in a typed [`SortError::DeviceLost`].
    pub device_lost: u64,
    /// Checkpoint migrations that moved an interrupted job to a
    /// surviving device.
    pub migrations: u64,
    /// Migrations that could not complete ([`SortError::MigrationFailed`]).
    pub migrations_failed: u64,
    /// Jobs a free device stole from another device's queue.
    pub steals: u64,
    /// Fresh jobs whose launch config was selected from a tuning ladder.
    pub tuned_jobs: u64,
    /// Total rungs stepped down the ladder by open breakers.
    pub ladder_steps: u64,
    /// Jobs refused with [`SortError::Uncertified`]: no ladder for the
    /// pipeline/device, an empty ladder, or a ladder exhausted by open
    /// breakers. Such jobs never execute an uncertified config.
    pub uncertified_rejected: u64,
    /// Jobs routed to the canary candidate rung.
    pub canary_jobs: u64,
    /// Canary candidates rolled back (a failed or degraded canary run,
    /// or a candidate the ladder does not certify).
    pub canary_rollbacks: u64,
    /// Canary candidates promoted to the active rung.
    pub canary_promotions: u64,
}

impl ServiceCounters {
    /// Fold `other` into `self` field by field.
    pub fn merge(&mut self, other: &ServiceCounters) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.executed += other.executed;
        self.verified_ok += other.verified_ok;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.shed_overload += other.shed_overload;
        self.shed_largest += other.shed_largest;
        self.shed_deadline += other.shed_deadline;
        self.invalid_deadline += other.invalid_deadline;
        self.budget_denied += other.budget_denied;
        self.breaker_opens += other.breaker_opens;
        self.breaker_half_opens += other.breaker_half_opens;
        self.breaker_closes += other.breaker_closes;
        self.quarantined += other.quarantined;
        self.probes += other.probes;
        self.resumed += other.resumed;
        self.checkpoints_taken += other.checkpoints_taken;
        self.device_crashes += other.device_crashes;
        self.device_restarts += other.device_restarts;
        self.device_lost += other.device_lost;
        self.migrations += other.migrations;
        self.migrations_failed += other.migrations_failed;
        self.steals += other.steals;
        self.tuned_jobs += other.tuned_jobs;
        self.ladder_steps += other.ladder_steps;
        self.uncertified_rejected += other.uncertified_rejected;
        self.canary_jobs += other.canary_jobs;
        self.canary_rollbacks += other.canary_rollbacks;
        self.canary_promotions += other.canary_promotions;
    }
}

impl ToJson for ServiceCounters {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("submitted", Json::from(self.submitted)),
            ("admitted", Json::from(self.admitted)),
            ("executed", Json::from(self.executed)),
            ("verified_ok", Json::from(self.verified_ok)),
            ("failed", Json::from(self.failed)),
            ("cancelled", Json::from(self.cancelled)),
            ("shed_overload", Json::from(self.shed_overload)),
            ("shed_largest", Json::from(self.shed_largest)),
            ("shed_deadline", Json::from(self.shed_deadline)),
            ("invalid_deadline", Json::from(self.invalid_deadline)),
            ("budget_denied", Json::from(self.budget_denied)),
            ("breaker_opens", Json::from(self.breaker_opens)),
            ("breaker_half_opens", Json::from(self.breaker_half_opens)),
            ("breaker_closes", Json::from(self.breaker_closes)),
            ("quarantined", Json::from(self.quarantined)),
            ("probes", Json::from(self.probes)),
            ("resumed", Json::from(self.resumed)),
            ("checkpoints_taken", Json::from(self.checkpoints_taken)),
            ("device_crashes", Json::from(self.device_crashes)),
            ("device_restarts", Json::from(self.device_restarts)),
            ("device_lost", Json::from(self.device_lost)),
            ("migrations", Json::from(self.migrations)),
            ("migrations_failed", Json::from(self.migrations_failed)),
            ("steals", Json::from(self.steals)),
        ];
        // Tuner-era fields are emitted only when nonzero, so every
        // artifact pinned before the tuner existed — and every run with
        // tuning off — stays bit-identical.
        for (name, value) in [
            ("tuned_jobs", self.tuned_jobs),
            ("ladder_steps", self.ladder_steps),
            ("uncertified_rejected", self.uncertified_rejected),
            ("canary_jobs", self.canary_jobs),
            ("canary_rollbacks", self.canary_rollbacks),
            ("canary_promotions", self.canary_promotions),
        ] {
            if value != 0 {
                pairs.push((name, Json::from(value)));
            }
        }
        Json::obj(pairs)
    }
}

impl FromJson for ServiceCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            submitted: v.field("submitted")?,
            admitted: v.field("admitted")?,
            executed: v.field("executed")?,
            verified_ok: v.field("verified_ok")?,
            failed: v.field("failed")?,
            cancelled: v.field("cancelled")?,
            shed_overload: v.field("shed_overload")?,
            shed_largest: v.field("shed_largest")?,
            shed_deadline: v.field("shed_deadline")?,
            invalid_deadline: v.field("invalid_deadline")?,
            budget_denied: v.field("budget_denied")?,
            breaker_opens: v.field("breaker_opens")?,
            breaker_half_opens: v.field("breaker_half_opens")?,
            breaker_closes: v.field("breaker_closes")?,
            quarantined: v.field("quarantined")?,
            probes: v.field("probes")?,
            resumed: v.field("resumed")?,
            checkpoints_taken: v.field("checkpoints_taken")?,
            // Cluster-era fields (PR 8): absent from older artifacts.
            device_crashes: v.field_opt("device_crashes")?.unwrap_or(0),
            device_restarts: v.field_opt("device_restarts")?.unwrap_or(0),
            device_lost: v.field_opt("device_lost")?.unwrap_or(0),
            migrations: v.field_opt("migrations")?.unwrap_or(0),
            migrations_failed: v.field_opt("migrations_failed")?.unwrap_or(0),
            steals: v.field_opt("steals")?.unwrap_or(0),
            // Tuner-era fields: omitted whenever zero.
            tuned_jobs: v.field_opt("tuned_jobs")?.unwrap_or(0),
            ladder_steps: v.field_opt("ladder_steps")?.unwrap_or(0),
            uncertified_rejected: v.field_opt("uncertified_rejected")?.unwrap_or(0),
            canary_jobs: v.field_opt("canary_jobs")?.unwrap_or(0),
            canary_rollbacks: v.field_opt("canary_rollbacks")?.unwrap_or(0),
            canary_promotions: v.field_opt("canary_promotions")?.unwrap_or(0),
        })
    }
}

/// Degradation-aware batch front-end over the robust driver: submit jobs
/// (optionally with fault plans, deadlines, and checkpoint policies),
/// cancel any of them, then [`SortService::drain`] executes the batch
/// deterministically and returns per-job typed outcomes.
pub struct SortService {
    config: RobustConfig,
    resilience: ResilienceConfig,
    jobs: Vec<Job>,
    next_id: u64,
    budget: RetryBudget,
    breakers: Vec<((String, usize, usize), CircuitBreaker)>,
    clock_s: f64,
    counters: ServiceCounters,
    /// Opt-in metrics (the zero-cost-observer pattern: `None` — the
    /// default — records nothing, and recording never feeds back into
    /// modeled time, so enabling telemetry leaves every job outcome and
    /// modeled second bit-identical).
    telemetry: Option<MetricsRegistry>,
    /// Opt-in certified auto-tuning (same pattern: `None` — the default
    /// — reproduces the legacy service bit for bit).
    tuning: Option<TuningState>,
}

/// Live state of an installed tuning ladder: the verified table, the
/// canary policy, and the per-pipeline active rung.
struct TuningState {
    table: TuningTable,
    policy: TuningPolicy,
    /// Active rung rank per pipeline label, initialized lazily from the
    /// base config's position on the ladder (rung 0 if the base config
    /// is not on it).
    active: Vec<(String, usize)>,
    /// Fresh admitted jobs seen so far — the deterministic canary clock.
    fresh_admitted: u64,
    /// Consecutive successful canary runs of the current candidate.
    canary_successes: u32,
    /// The candidate was promoted or rolled back; no more canaries fire.
    canary_retired: bool,
}

/// One ladder decision for one job.
struct TuningChoice {
    params: SortParams,
    rank: usize,
    degraded: bool,
    canary: bool,
}

impl SortService {
    /// A service running every job under `config`, with every resilience
    /// mechanism off (legacy behavior).
    #[must_use]
    pub fn new(config: RobustConfig) -> Self {
        Self::with_resilience(config, ResilienceConfig::default())
    }

    /// A service under `config` with an explicit resilience policy.
    #[must_use]
    pub fn with_resilience(config: RobustConfig, resilience: ResilienceConfig) -> Self {
        Self {
            config,
            resilience,
            jobs: Vec::new(),
            next_id: 0,
            budget: RetryBudget::new(resilience.retry_budget),
            breakers: Vec::new(),
            clock_s: 0.0,
            counters: ServiceCounters::default(),
            telemetry: None,
            tuning: None,
        }
    }

    /// Install a tuning ladder and canary policy. From here on fresh
    /// jobs launch on their pipeline's active rung, open breakers step
    /// *down* the ladder instead of jumping to
    /// [`SortParams::known_good_default`], requests the ladder cannot
    /// certify fail closed with [`SortError::Uncertified`], and the
    /// canary policy (if any) deterministically probes its candidate
    /// rung. The table is verified fail-closed: a schema or checksum
    /// mismatch rejects the install and leaves the service untouched.
    pub fn enable_tuning(
        &mut self,
        table: TuningTable,
        policy: TuningPolicy,
    ) -> Result<(), SortError> {
        if let Err(why) = table.verify() {
            return Err(SortError::Uncertified {
                algo: "*".to_string(),
                device: self.config.base.device.name.clone(),
                why,
            });
        }
        self.tuning = Some(TuningState {
            table,
            policy,
            active: Vec::new(),
            fresh_admitted: 0,
            canary_successes: 0,
            canary_retired: false,
        });
        Ok(())
    }

    /// Ladder admission for one fresh job: pick the active rung (or the
    /// canary candidate on its deterministic cadence), or fail closed.
    /// Only called when tuning is installed.
    fn tuning_select(&mut self, algo: &str) -> Result<TuningChoice, SortError> {
        let device = self.config.base.device.name.clone();
        let base = self.config.base.params;
        let state = self.tuning.as_mut().expect("caller checked tuning is installed");
        let Some(ladder) = state.table.ladder_for(&device, algo) else {
            return Err(SortError::Uncertified {
                algo: algo.to_string(),
                device,
                why: "no ladder for this pipeline/device in the tuning table".to_string(),
            });
        };
        if ladder.rungs.is_empty() {
            let why = match ladder.excluded.first() {
                Some(x) => format!(
                    "the ladder has no certified rungs (e.g. E={}, u={} excluded: {})",
                    x.e, x.u, x.reason
                ),
                None => "the ladder has no certified rungs".to_string(),
            };
            return Err(SortError::Uncertified { algo: algo.to_string(), device, why });
        }
        // Lazy active-rank init: start from the base config's rung when
        // the ladder certifies it, else from the ladder's best rung.
        let active_rank = match state.active.iter().find(|(a, _)| a == algo) {
            Some((_, rank)) => *rank,
            None => {
                let rank = ladder.rung_for(base).map_or(0, |rg| rg.rank);
                state.active.push((algo.to_string(), rank));
                rank
            }
        };
        state.fresh_admitted += 1;

        // Deterministic canary: on its cadence, probe the candidate rung
        // instead of the active one. A candidate the ladder does not
        // certify is rejected (a rollback) the first time it would fire.
        if let Some(canary) = state.policy.canary {
            if !state.canary_retired && canary.fires_on(state.fresh_admitted) {
                match ladder.rung_for(canary.candidate) {
                    Some(rung) if rung.rank != active_rank => {
                        return Ok(TuningChoice {
                            params: rung.params(),
                            rank: rung.rank,
                            degraded: rung.tier == RungTier::Degraded,
                            canary: true,
                        });
                    }
                    Some(_) => {
                        // Candidate is already the active rung: nothing
                        // to probe, retire the policy quietly.
                        state.canary_retired = true;
                    }
                    None => {
                        state.canary_retired = true;
                        self.counters.canary_rollbacks += 1;
                    }
                }
            }
        }

        let rung = &ladder.rungs[active_rank];
        Ok(TuningChoice {
            params: rung.params(),
            rank: rung.rank,
            degraded: rung.tier == RungTier::Degraded,
            canary: false,
        })
    }

    /// The breaker at `from_rank` is open: walk down the ladder to the
    /// first rung whose own breaker is not open, or fail closed when the
    /// ladder is exhausted. Returns the substitute choice and the number
    /// of rungs stepped.
    fn tuning_step_down(
        &mut self,
        algo: &str,
        from_rank: usize,
    ) -> Result<(TuningChoice, u64), SortError> {
        // Snapshot the open breakers first (disjoint from tuning state).
        let open: Vec<(usize, usize)> = self
            .breakers
            .iter()
            .filter(|((label, _, _), b)| label == algo && b.state() == BreakerState::Open)
            .map(|((_, e, u), _)| (*e, *u))
            .collect();
        let device = self.config.base.device.name.clone();
        let state = self.tuning.as_ref().expect("caller checked tuning is installed");
        let ladder = state
            .table
            .ladder_for(&device, algo)
            .expect("step-down only happens after a successful select");
        for rung in &ladder.rungs[from_rank + 1..] {
            if !open.contains(&(rung.e, rung.u)) {
                return Ok((
                    TuningChoice {
                        params: rung.params(),
                        rank: rung.rank,
                        degraded: rung.tier == RungTier::Degraded,
                        canary: false,
                    },
                    (rung.rank - from_rank) as u64,
                ));
            }
        }
        Err(SortError::Uncertified {
            algo: algo.to_string(),
            device,
            why: format!(
                "degradation ladder exhausted below rung {from_rank}: every lower rung's \
                 breaker is open"
            ),
        })
    }

    /// Lifetime resilience tallies.
    #[must_use]
    pub fn counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// Switch telemetry on: from here on the service records queue depth
    /// at admission, per-job end-to-end latency (modeled seconds),
    /// breaker transitions, retry-budget level, and the per-job recovery
    /// counters into a [`MetricsRegistry`]. Purely observational — job
    /// outcomes and modeled time are unchanged.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(MetricsRegistry::new());
        }
    }

    /// Frozen view of the telemetry recorded so far (`None` unless
    /// [`SortService::enable_telemetry`] was called).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<MetricsSnapshot> {
        self.telemetry.as_ref().map(MetricsRegistry::snapshot)
    }

    /// The modeled service clock: the sum of every executed job's
    /// simulated seconds so far.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Advance the service clock to the cluster's global event time (a
    /// device that sat idle still saw its retry budget refill and its
    /// breaker cooldowns tick). Never moves the clock backwards, and is
    /// a no-op in the single-device batch pattern where dispatch times
    /// coincide with the accumulated clock — which is exactly why N=1
    /// fault-free cluster runs stay bit-identical to [`SortService`].
    pub(crate) fn sync_clock(&mut self, now_s: f64) {
        if now_s > self.clock_s {
            self.clock_s = now_s;
        }
    }

    /// Retry tokens currently in the budget (`None` when unlimited).
    #[must_use]
    pub fn budget_tokens(&self) -> Option<f64> {
        self.budget.tokens()
    }

    /// Snapshot of every breaker the service has instantiated:
    /// `(pipeline label, E, u, state, opens)`.
    #[must_use]
    pub fn breaker_snapshots(&self) -> Vec<(String, usize, usize, BreakerState, u64)> {
        self.breakers
            .iter()
            .map(|((label, e, u), b)| (label.clone(), *e, *u, b.state(), b.opens()))
            .collect()
    }

    /// Submit a production job (no fault injection, no deadline).
    pub fn submit(&mut self, label: &str, input: Vec<u32>, algo: SortAlgorithm) -> JobId {
        self.submit_with_faults(label, input, algo, FaultPlan::none(), None)
    }

    /// Submit a job with a fault plan and an optional deadline in modeled
    /// seconds. A job whose modeled completion time (retries, backoff,
    /// and spikes included) exceeds the deadline fails with
    /// [`SortError::DeadlineExceeded`].
    pub fn submit_with_faults(
        &mut self,
        label: &str,
        input: Vec<u32>,
        algo: SortAlgorithm,
        plan: FaultPlan,
        deadline_s: Option<f64>,
    ) -> JobId {
        self.submit_with_policy(label, input, algo, plan, deadline_s, CheckpointPolicy::default())
    }

    /// Submit a job that also captures checkpoints under `policy` (and,
    /// for a kill policy, dies with [`SortError::Interrupted`] carrying
    /// the checkpoint to resume from).
    pub fn submit_with_policy(
        &mut self,
        label: &str,
        input: Vec<u32>,
        algo: SortAlgorithm,
        plan: FaultPlan,
        deadline_s: Option<f64>,
        policy: CheckpointPolicy,
    ) -> JobId {
        let n = input.len();
        self.enqueue(Job {
            id: JobId(0), // assigned by enqueue
            label: label.to_string(),
            payload: Payload::Fresh { input, algo },
            plan,
            deadline_s,
            cancelled: false,
            checkpoint_policy: policy,
            pre_shed: None,
            n,
        })
    }

    /// Submit a resume of an interrupted job from its checkpoint. The
    /// checkpoint's integrity is validated at execution time; tampered or
    /// mismatched checkpoints fail with [`SortError::CheckpointInvalid`].
    pub fn submit_resume(
        &mut self,
        label: &str,
        checkpoint: SortCheckpoint,
        plan: FaultPlan,
        deadline_s: Option<f64>,
    ) -> JobId {
        let n = checkpoint.n;
        self.enqueue(Job {
            id: JobId(0),
            label: label.to_string(),
            payload: Payload::Resume { checkpoint: Box::new(checkpoint) },
            plan,
            deadline_s,
            cancelled: false,
            checkpoint_policy: CheckpointPolicy::default(),
            pre_shed: None,
            n,
        })
    }

    /// Assign an id, run admission control, and queue the job. Ids are
    /// monotonically increasing for the lifetime of the service — they
    /// are never reused across batches, so a stale handle from a drained
    /// batch can never cancel a newer job.
    fn enqueue(&mut self, mut job: Job) -> JobId {
        job.id = JobId(self.next_id);
        self.next_id += 1;
        self.counters.submitted += 1;

        // Deadline sanity comes first: a NaN or negative deadline is a
        // caller bug, not load.
        if let Some(d) = job.deadline_s {
            if !d.is_finite() || d < 0.0 {
                self.counters.invalid_deadline += 1;
                job.pre_shed = Some(SortError::InvalidDeadline { deadline_s: d });
                let id = job.id;
                self.jobs.push(job);
                self.record_admission(false);
                return id;
            }
        }

        match self.resilience.admission.capacity {
            Some(capacity) if self.admitted_count() >= capacity => {
                self.apply_shed_policy(&mut job, capacity);
            }
            _ => {}
        }
        let admitted = job.pre_shed.is_none();
        if admitted {
            self.counters.admitted += 1;
        }
        let id = job.id;
        self.jobs.push(job);
        self.record_admission(admitted);
        id
    }

    /// Telemetry hook for one admission event: the submission counter and
    /// the queue depth *after* the decision, both as a histogram sample
    /// (the time series the ROADMAP's traffic-scale work wants) and as a
    /// last-value gauge.
    fn record_admission(&mut self, admitted: bool) {
        if self.telemetry.is_none() {
            return;
        }
        let depth = self.admitted_count() as u64;
        let reg = self.telemetry.as_mut().expect("checked above");
        reg.inc("service_jobs_submitted_total", 1);
        if admitted {
            reg.inc("service_jobs_admitted_total", 1);
        }
        reg.observe("service_queue_depth_at_admission", depth);
        reg.set_gauge("service_queue_depth", depth as f64);
    }

    fn admitted_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.admitted()).count()
    }

    /// The queue is full: decide who pays, per the configured policy.
    fn apply_shed_policy(&mut self, incoming: &mut Job, capacity: usize) {
        match self.resilience.admission.policy {
            ShedPolicy::RejectNewest => {
                self.counters.shed_overload += 1;
                incoming.pre_shed = Some(SortError::Overloaded { capacity });
            }
            ShedPolicy::RejectLargest => {
                // Evict the largest queued job (ties to the newest) if it
                // is at least as large as the incoming one.
                let victim = self
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| j.admitted() && j.n >= incoming.n)
                    .max_by_key(|(i, j)| (j.n, *i))
                    .map(|(i, _)| i);
                match victim {
                    Some(i) => {
                        self.counters.shed_largest += 1;
                        let n = self.jobs[i].n;
                        self.jobs[i].pre_shed = Some(SortError::Shed {
                            policy: ShedPolicy::RejectLargest.label(),
                            reason: format!(
                                "evicted ({n} keys) for a newer {}-key job with the queue at \
                                 capacity {capacity}",
                                incoming.n
                            ),
                        });
                    }
                    None => {
                        self.counters.shed_overload += 1;
                        incoming.pre_shed = Some(SortError::Overloaded { capacity });
                    }
                }
            }
            ShedPolicy::DeadlineAware => {
                // Shed queued jobs that provably cannot meet their own
                // deadline: the optimistic lower-bound estimate already
                // exceeds it, so running them would only burn modeled
                // time ahead of feasible work.
                let mut shed_any = false;
                for j in &mut self.jobs {
                    if !j.admitted() {
                        continue;
                    }
                    if let Some(d) = j.deadline_s {
                        let floor = estimate_sort_seconds(j.n, &self.config.base);
                        if floor > d {
                            shed_any = true;
                            self.counters.shed_deadline += 1;
                            j.pre_shed = Some(SortError::Shed {
                                policy: ShedPolicy::DeadlineAware.label(),
                                reason: format!(
                                    "deadline {d:.3e}s unreachable: optimistic lower bound is \
                                     {floor:.3e}s"
                                ),
                            });
                        }
                    }
                }
                if !shed_any {
                    self.counters.shed_overload += 1;
                    incoming.pre_shed = Some(SortError::Overloaded { capacity });
                }
            }
        }
    }

    /// Cancel a pending job. Returns `false` if the id is unknown (or the
    /// batch containing it already ran).
    pub fn cancel(&mut self, id: JobId) -> bool {
        match self.jobs.iter_mut().find(|j| j.id == id) {
            Some(job) => {
                job.cancelled = true;
                true
            }
            None => false,
        }
    }

    /// Number of jobs waiting in the current batch (cancelled and shed
    /// included — they still produce an outcome).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.jobs.len()
    }

    /// Execute every submitted job and drain the batch. Outcomes come
    /// back in submission order; cancelled jobs yield
    /// [`SortError::Cancelled`] and shed jobs their typed shed error,
    /// without running. Deterministic: jobs run sequentially in
    /// submission order and all scheduling is in modeled time.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        let jobs = std::mem::take(&mut self.jobs);
        jobs.into_iter().map(|job| self.execute(job)).collect()
    }

    /// Legacy alias for [`SortService::drain`].
    pub fn run_all(&mut self) -> Vec<JobOutcome> {
        self.drain()
    }

    fn breaker_for(&mut self, key: (String, usize, usize)) -> &mut CircuitBreaker {
        if let Some(i) = self.breakers.iter().position(|(k, _)| *k == key) {
            return &mut self.breakers[i].1;
        }
        self.breakers.push((key, CircuitBreaker::new()));
        &mut self.breakers.last_mut().expect("just pushed").1
    }

    /// Tally breaker transitions that happened after index `from`.
    fn tally_breaker_transitions(&mut self, key: &(String, usize, usize), from: usize) {
        let Some((_, b)) = self.breakers.iter().find(|(k, _)| k == key) else { return };
        for t in &b.transitions()[from..] {
            let name = match t.to {
                BreakerState::Open => {
                    self.counters.breaker_opens += 1;
                    "service_breaker_opens_total"
                }
                BreakerState::HalfOpen => {
                    self.counters.breaker_half_opens += 1;
                    "service_breaker_half_opens_total"
                }
                BreakerState::Closed => {
                    self.counters.breaker_closes += 1;
                    "service_breaker_closes_total"
                }
            };
            if let Some(reg) = &mut self.telemetry {
                reg.inc(name, 1);
            }
        }
    }

    fn execute(&mut self, job: Job) -> JobOutcome {
        if let Some(err) = job.pre_shed {
            if let Some(reg) = &mut self.telemetry {
                reg.inc("service_jobs_shed_total", 1);
            }
            return JobOutcome {
                id: job.id,
                label: job.label,
                result: Err(err),
                quarantined: false,
                probe: false,
                degraded: false,
                canary: false,
                tuned: None,
                retries_granted: 0,
                checkpoints: Vec::new(),
            };
        }
        if job.cancelled {
            self.counters.cancelled += 1;
            if let Some(reg) = &mut self.telemetry {
                reg.inc("service_jobs_cancelled_total", 1);
            }
            return JobOutcome {
                id: job.id,
                label: job.label,
                result: Err(SortError::Cancelled),
                quarantined: false,
                probe: false,
                degraded: false,
                canary: false,
                tuned: None,
                retries_granted: 0,
                checkpoints: Vec::new(),
            };
        }

        // Ladder admission (only when tuning is installed): fresh jobs
        // launch on their pipeline's active rung — or the canary
        // candidate on its deterministic cadence — and requests the
        // ladder cannot certify fail closed before touching the
        // breakers or the budget. Resumes stay pinned to their
        // checkpoint's launch config.
        let is_resume = matches!(job.payload, Payload::Resume { .. });
        let mut choice: Option<TuningChoice> = None;
        if self.tuning.is_some() && !is_resume {
            match self.tuning_select(&job.algo_label()) {
                Ok(c) => choice = Some(c),
                Err(err) => {
                    self.counters.uncertified_rejected += 1;
                    if let Some(reg) = &mut self.telemetry {
                        reg.inc("service_uncertified_rejected_total", 1);
                    }
                    return JobOutcome {
                        id: job.id,
                        label: job.label,
                        result: Err(err),
                        quarantined: false,
                        probe: false,
                        degraded: false,
                        canary: false,
                        tuned: None,
                        retries_granted: 0,
                        checkpoints: Vec::new(),
                    };
                }
            }
        }
        self.counters.executed += 1;

        // Breaker routing on the rung (or legacy base config) the job
        // was admitted at. Resumes bypass the breaker entirely: they
        // can neither be quarantined (the checkpoint's shape would not
        // match) nor serve as probes. Canary jobs also bypass it — a
        // probe of the candidate rung must not perturb breaker state.
        let routed_params = choice.as_ref().map_or(self.config.base.params, |c| c.params);
        let is_canary = choice.as_ref().is_some_and(|c| c.canary);
        let key = (job.algo_label(), routed_params.e, routed_params.u);
        let transitions_before =
            self.breakers.iter().find(|(k, _)| *k == key).map_or(0, |(_, b)| b.transitions().len());
        let route = if self.resilience.breaker.enabled && !is_resume && !is_canary {
            let now = self.clock_s;
            self.breaker_for(key.clone()).route(now)
        } else {
            Route::Normal
        };
        let quarantined = route == Route::Quarantine;
        let probe = route == Route::Probe;
        if quarantined {
            self.counters.quarantined += 1;
        }
        if probe {
            self.counters.probes += 1;
        }

        // An open breaker quarantines the job. A tuned service steps
        // DOWN the ladder to the first rung whose own breaker is not
        // open — failing closed when the ladder is exhausted — while
        // the legacy service substitutes the known-good constant.
        let mut preempt: Option<SortError> = None;
        let mut exec_params = routed_params;
        if quarantined {
            match &choice {
                Some(c) => match self.tuning_step_down(&job.algo_label(), c.rank) {
                    Ok((sub, steps)) => {
                        self.counters.ladder_steps += steps;
                        exec_params = sub.params;
                        choice = Some(sub);
                    }
                    Err(err) => {
                        self.counters.uncertified_rejected += 1;
                        preempt = Some(err);
                    }
                },
                None => exec_params = SortParams::known_good_default(),
            }
        }
        let preempted = preempt.is_some();

        // Which breaker the outcome feeds: the executed rung's. A
        // legacy quarantined run feeds nothing (a known-good run says
        // nothing about the poisoned config), but a tuned stepped-down
        // run DOES feed the rung it executed on — that is what lets a
        // persistent fault cascade breakers open down the ladder.
        let feed_key: Option<(String, usize, usize)> =
            if !self.resilience.breaker.enabled || is_resume || is_canary || preempted {
                None
            } else if quarantined {
                choice.as_ref().map(|_| (job.algo_label(), exec_params.e, exec_params.u))
            } else {
                Some(key.clone())
            };
        let feed_transitions_before = feed_key.as_ref().filter(|fk| **fk != key).map(|fk| {
            self.breakers.iter().find(|(k, _)| k == fk).map_or(0, |(_, b)| b.transitions().len())
        });

        // Budget grant: the effective per-block retry cap for this job.
        // A preempted job executes nothing and draws no tokens.
        self.budget.advance_to(self.clock_s);
        let want = self.config.max_retries;
        let granted = if preempted { 0 } else { self.budget.grant(want) };
        if !preempted && granted < want {
            self.counters.budget_denied += 1;
        }

        let mut cfg = self.config.clone();
        cfg.max_retries = granted;
        cfg.base.params = exec_params;

        let mut checkpoints = Vec::new();
        let result = match preempt {
            Some(err) => Err(err),
            None => match &job.payload {
                Payload::Resume { checkpoint } => {
                    self.counters.resumed += 1;
                    resume_sort_robust::<u32>(checkpoint, &cfg, &job.plan)
                }
                Payload::Fresh { input, algo } if !job.checkpoint_policy.is_noop() => {
                    simulate_sort_robust_checkpointed(
                        input,
                        *algo,
                        &cfg,
                        &job.plan,
                        job.checkpoint_policy,
                    )
                    .map(|(run, taken)| {
                        checkpoints = taken;
                        run
                    })
                }
                Payload::Fresh { input, algo } => {
                    simulate_sort_robust(input, *algo, &cfg, &job.plan)
                }
            },
        };
        self.counters.checkpoints_taken += checkpoints.len() as u64;

        // Settle the budget and the breaker on the run's real outcome,
        // then advance the modeled clock.
        let elapsed = match &result {
            Ok(run) => {
                self.budget.debit(run.report.counters.retries);
                run.run.simulated_seconds
            }
            Err(_) => 0.0,
        };
        if let Some(fk) = &feed_key {
            // Success means the executed config carried the job without
            // pipeline-level degradation; a fallback rescue is a health
            // failure of the config even though the job's output is fine.
            let success = match &result {
                Ok(run) => run.report.counters.fallbacks == 0,
                Err(_) => false,
            };
            let at = self.clock_s + elapsed;
            let bc = self.resilience.breaker;
            self.breaker_for(fk.clone()).on_outcome(success, at, &bc);
        }
        self.tally_breaker_transitions(&key, transitions_before);
        if let (Some(fk), Some(before)) = (&feed_key, feed_transitions_before) {
            // The stepped-down rung's breaker is a different one; the
            // filter above guarantees this never double-tallies.
            self.tally_breaker_transitions(fk, before);
        }
        self.clock_s += elapsed;

        // Deadline enforcement on the exact modeled duration.
        let result = result.and_then(|run| match job.deadline_s {
            Some(d) if run.run.simulated_seconds > d => Err(SortError::DeadlineExceeded {
                deadline_s: d,
                needed_s: run.run.simulated_seconds,
            }),
            _ => Ok(run),
        });
        match &result {
            Ok(_) => self.counters.verified_ok += 1,
            Err(_) => self.counters.failed += 1,
        }

        // Canary settlement: a clean run (verified, no fallback rescue,
        // deadline met) extends the candidate's streak and promotes it
        // to the active rung at the configured length; anything else
        // rolls the candidate back — the previously active rung simply
        // stays active, which is the whole rollback.
        if is_canary {
            self.counters.canary_jobs += 1;
            let success = match &result {
                Ok(run) => run.report.counters.fallbacks == 0,
                Err(_) => false,
            };
            let algo = job.algo_label();
            let state = self.tuning.as_mut().expect("canary implies tuning");
            if success {
                state.canary_successes += 1;
                let streak = state.canary_successes;
                if state.policy.canary.is_some_and(|c| streak >= c.promote_after) {
                    let rank = choice.as_ref().expect("canary implies a choice").rank;
                    if let Some(slot) = state.active.iter_mut().find(|(a, _)| *a == algo) {
                        slot.1 = rank;
                    }
                    state.canary_retired = true;
                    self.counters.canary_promotions += 1;
                }
            } else {
                state.canary_retired = true;
                self.counters.canary_rollbacks += 1;
            }
        }

        let tuned = if choice.is_some() && !preempted { Some(exec_params) } else { None };
        let degraded = choice.as_ref().is_some_and(|c| c.degraded) && !preempted;
        if tuned.is_some() {
            self.counters.tuned_jobs += 1;
        }

        // Telemetry settles last, from the same values the outcome is
        // built from — never the other way around.
        if let Some(reg) = &mut self.telemetry {
            reg.inc("service_jobs_executed_total", 1);
            if quarantined {
                reg.inc("service_quarantined_total", 1);
            }
            if probe {
                reg.inc("service_probes_total", 1);
            }
            if tuned.is_some() {
                reg.inc("service_tuned_jobs_total", 1);
            }
            if degraded {
                reg.inc("service_degraded_jobs_total", 1);
            }
            if is_canary {
                reg.inc("service_canary_jobs_total", 1);
            }
            if !preempted && granted < want {
                reg.inc("service_budget_denied_total", 1);
            }
            match &result {
                Ok(run) => {
                    reg.inc("service_jobs_verified_total", 1);
                    reg.observe_seconds("service_job_latency_seconds", run.run.simulated_seconds);
                    reg.record_recovery("service", &run.report.counters);
                }
                Err(SortError::UnrecoverableFault { .. }) => {
                    reg.inc("service_jobs_failed_total", 1);
                    reg.inc("service_unrecovered_total", 1);
                }
                Err(_) => reg.inc("service_jobs_failed_total", 1),
            }
            if let Some(tokens) = self.budget.tokens() {
                reg.set_gauge("service_retry_budget_tokens", tokens);
            }
            reg.set_gauge("service_clock_seconds", self.clock_s);
        }

        JobOutcome {
            id: job.id,
            label: job.label,
            result,
            quarantined,
            probe,
            degraded,
            canary: is_canary,
            tuned,
            retries_granted: granted,
            checkpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::InputSpec;
    use crate::params::SortParams;
    use crate::sort::pipeline::SortConfig;
    use cfmerge_gpu_sim::fault::{FaultKind, FaultSite, Persistence};

    fn small_rcfg() -> RobustConfig {
        RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
    }

    fn site(kernel: u32, block: u32, kind: FaultKind, persistence: Persistence) -> FaultSite {
        FaultSite { kernel, block, phase: 1, kind, persistence }
    }

    #[test]
    fn service_runs_cancels_and_enforces_deadlines() {
        let mut svc = SortService::new(small_rcfg());
        let input = InputSpec::UniformRandom { seed: 18 }.generate(2 * 160);
        let ok_id = svc.submit("ok", input.clone(), SortAlgorithm::CfMerge);
        let cancel_id = svc.submit("cancel-me", input.clone(), SortAlgorithm::CfMerge);
        let tight_id = svc.submit_with_faults(
            "tight",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(1e-12),
        );
        let faulty_id = svc.submit_with_faults(
            "faulty",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::from_sites(vec![site(
                0,
                0,
                FaultKind::StuckBank { bank: 0, bit: 0 },
                Persistence::Transient,
            )]),
            Some(1.0),
        );
        assert!(svc.cancel(cancel_id));
        assert!(!svc.cancel(JobId(999)));
        assert_eq!(svc.pending(), 4);

        let outcomes = svc.run_all();
        assert_eq!(svc.pending(), 0);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].id, ok_id);
        let ok_run = outcomes[0].result.as_ref().expect("ok job");
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(ok_run.run.output, expect);
        assert_eq!(outcomes[1].id, cancel_id);
        assert!(matches!(outcomes[1].result, Err(SortError::Cancelled)));
        assert_eq!(outcomes[2].id, tight_id);
        assert!(matches!(outcomes[2].result, Err(SortError::DeadlineExceeded { .. })));
        assert_eq!(outcomes[3].id, faulty_id);
        let faulty_run = outcomes[3].result.as_ref().expect("faulty job recovers");
        assert_eq!(faulty_run.run.output, expect);

        let total = aggregate_counters(&outcomes);
        assert!(total.faults_injected >= 1);
        assert_eq!(total.faults_detected, 1);
        assert_eq!(total.retries, 1);
        assert_eq!(total.unrecovered, 0);

        let sc = svc.counters();
        assert_eq!(sc.submitted, 4);
        assert_eq!(sc.executed, 3);
        assert_eq!(sc.verified_ok, 2);
        assert_eq!(sc.failed, 1);
        assert_eq!(sc.cancelled, 1);
        assert!(svc.clock_s() > 0.0);
    }

    #[test]
    fn job_ids_never_reset_across_batches() {
        let mut svc = SortService::new(small_rcfg());
        let input = InputSpec::UniformRandom { seed: 40 }.generate(160);
        let a = svc.submit("a", input.clone(), SortAlgorithm::CfMerge);
        svc.drain();
        let b = svc.submit("b", input, SortAlgorithm::CfMerge);
        assert_ne!(a, b, "a drained batch's ids must never be reissued");
        // A stale handle from the drained batch cannot cancel anything.
        assert!(!svc.cancel(a));
        assert!(svc.cancel(b));
    }

    #[test]
    fn invalid_deadlines_are_typed_not_panics() {
        let mut svc = SortService::new(small_rcfg());
        let input = InputSpec::UniformRandom { seed: 41 }.generate(160);
        for bad in [-1.0, f64::NAN, f64::NEG_INFINITY] {
            svc.submit_with_faults(
                "bad",
                input.clone(),
                SortAlgorithm::CfMerge,
                FaultPlan::none(),
                Some(bad),
            );
        }
        // A zero deadline at t=0 is *valid* — it just cannot be met.
        svc.submit_with_faults(
            "zero",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(0.0),
        );
        let outcomes = svc.drain();
        for o in &outcomes[..3] {
            assert!(
                matches!(o.result, Err(SortError::InvalidDeadline { .. })),
                "expected InvalidDeadline, got {:?}",
                o.result
            );
        }
        assert!(matches!(outcomes[3].result, Err(SortError::DeadlineExceeded { .. })));
        assert_eq!(svc.counters().invalid_deadline, 3);
        assert_eq!(svc.counters().executed, 1);
    }

    #[test]
    fn cancelling_a_resume_job_never_executes_it() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 42 }.generate(4 * 160);
        let cp = match crate::recovery::simulate_sort_robust_checkpointed(
            &input,
            SortAlgorithm::CfMerge,
            &rcfg,
            &FaultPlan::none(),
            CheckpointPolicy::kill_after(0),
        ) {
            Err(SortError::Interrupted { checkpoint, .. }) => *checkpoint,
            other => panic!("expected Interrupted, got {other:?}"),
        };
        let mut svc = SortService::new(rcfg);
        let id = svc.submit_resume("resume", cp, FaultPlan::none(), None);
        assert!(svc.cancel(id));
        let outcomes = svc.drain();
        assert!(matches!(outcomes[0].result, Err(SortError::Cancelled)));
        assert_eq!(svc.counters().resumed, 0, "cancelled resume must not execute");
        assert_eq!(svc.clock_s(), 0.0);
    }

    #[test]
    fn reject_newest_sheds_the_incoming_job() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(2, ShedPolicy::RejectNewest),
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 43 }.generate(160);
        svc.submit("a", input.clone(), SortAlgorithm::CfMerge);
        svc.submit("b", input.clone(), SortAlgorithm::CfMerge);
        svc.submit("c", input, SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[1].result.is_ok());
        assert!(matches!(outcomes[2].result, Err(SortError::Overloaded { capacity: 2 })));
        assert_eq!(svc.counters().shed_overload, 1);
        assert_eq!(svc.counters().executed, 2);
    }

    #[test]
    fn reject_largest_evicts_the_biggest_queued_job() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(2, ShedPolicy::RejectLargest),
                ..ResilienceConfig::default()
            },
        );
        let small = InputSpec::UniformRandom { seed: 44 }.generate(160);
        let big = InputSpec::UniformRandom { seed: 45 }.generate(8 * 160);
        svc.submit("small", small.clone(), SortAlgorithm::CfMerge);
        let big_id = svc.submit("big", big, SortAlgorithm::CfMerge);
        let new_id = svc.submit("newcomer", small.clone(), SortAlgorithm::CfMerge);
        // An incoming job larger than everything queued is refused
        // instead (evicting a smaller job would not make room policy-
        // wise).
        let huge = InputSpec::UniformRandom { seed: 46 }.generate(16 * 160);
        let huge_id = svc.submit("huge", huge, SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        let by_id = |id: JobId| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(
            matches!(&by_id(big_id).result, Err(SortError::Shed { policy, .. }) if *policy == "reject-largest")
        );
        assert!(by_id(new_id).result.is_ok());
        assert!(matches!(by_id(huge_id).result, Err(SortError::Overloaded { .. })));
        assert_eq!(svc.counters().shed_largest, 1);
        assert_eq!(svc.counters().shed_overload, 1);
    }

    #[test]
    fn deadline_aware_sheds_unreachable_jobs_first() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(2, ShedPolicy::DeadlineAware),
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 47 }.generate(4 * 160);
        svc.submit("feasible", input.clone(), SortAlgorithm::CfMerge);
        let doomed = svc.submit_with_faults(
            "doomed",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(1e-15),
        );
        let late = svc.submit("latecomer", input, SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        let by_id = |id: JobId| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(
            matches!(&by_id(doomed).result, Err(SortError::Shed { policy, .. }) if *policy == "deadline-aware")
        );
        assert!(by_id(late).result.is_ok());
        assert_eq!(svc.counters().shed_deadline, 1);
        assert_eq!(svc.counters().executed, 2);
    }

    #[test]
    fn breaker_quarantines_then_probe_closes() {
        // Cooldown shorter than one job's modeled runtime (launch
        // overhead alone is 3µs): the job right after the trip is still
        // inside the cooldown window and quarantines; the one after that
        // probes and closes the breaker.
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                breaker: BreakerConfig { enabled: true, failure_threshold: 1, cooldown_s: 1e-6 },
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 48 }.generate(2 * 160);
        // A sticky fault defeats every retry and forces the Thrust
        // fallback: the output is verified but the requested config
        // failed health-wise.
        let poison = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::StuckBank { bank: 1, bit: 3 },
            Persistence::Sticky,
        )]);
        svc.submit_with_faults("trip", input.clone(), SortAlgorithm::CfMerge, poison, None);
        svc.submit("clean-1", input.clone(), SortAlgorithm::CfMerge);
        svc.submit("clean-2", input.clone(), SortAlgorithm::CfMerge);
        let outcomes = svc.drain();

        assert!(outcomes[0].result.is_ok(), "fallback rescues the tripping job");
        assert!(outcomes[1].quarantined, "job inside the cooldown runs quarantined");
        let qrun = outcomes[1].result.as_ref().expect("quarantined job succeeds");
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(qrun.run.output, expect);
        // Quarantined runs use the known-good paper config: 320 keys fit
        // one E=17,u=256 tile, so the whole sort is a single blocksort
        // launch (the small 5/32 config would need a merge pass too).
        assert_eq!(qrun.run.kernels.len(), 1);
        assert_eq!(qrun.run.kernels[0].name, "blocksort");

        assert!(outcomes[2].probe, "job after the cooldown probes the real config");
        assert!(outcomes[2].result.is_ok());

        let sc = svc.counters();
        assert_eq!(sc.breaker_opens, 1);
        assert_eq!(sc.quarantined, 1);
        assert_eq!(sc.probes, 1);
        assert_eq!(sc.breaker_half_opens, 1);
        assert_eq!(sc.breaker_closes, 1);
        let snaps = svc.breaker_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].3, BreakerState::Closed);
    }

    #[test]
    fn tuning_selects_the_best_rung_and_steps_down_open_breakers() {
        use crate::cert::build_certificate_table;
        use crate::sort::pipeline::SortConfig;
        use crate::tuning::build_tuning_table;

        let table = build_tuning_table(&build_certificate_table());
        // Base config E=17,u=256 sits on rung 0 of the rtx cf ladder;
        // rung 1 is E=15,u=512. Cooldown far above any modeled job
        // time, so an opened breaker stays open for the whole batch.
        let mut svc = SortService::with_resilience(
            RobustConfig::new(SortConfig::paper_e17_u256()),
            ResilienceConfig {
                breaker: BreakerConfig { enabled: true, failure_threshold: 1, cooldown_s: 1.0 },
                ..ResilienceConfig::default()
            },
        );
        svc.enable_tuning(table, TuningPolicy::default()).expect("table verifies");

        let input = InputSpec::UniformRandom { seed: 90 }.generate(4500);
        let poison = || {
            FaultPlan::from_sites(vec![site(
                0,
                0,
                FaultKind::StuckBank { bank: 1, bit: 3 },
                Persistence::Sticky,
            )])
        };
        svc.submit_with_faults("trip-r0", input.clone(), SortAlgorithm::CfMerge, poison(), None);
        svc.submit("stepped", input.clone(), SortAlgorithm::CfMerge);
        svc.submit_with_faults("trip-r1", input.clone(), SortAlgorithm::CfMerge, poison(), None);
        svc.submit("exhausted", input.clone(), SortAlgorithm::CfMerge);
        let outcomes = svc.drain();

        // Job 1 runs on rung 0; the fallback rescue opens its breaker.
        assert_eq!(outcomes[0].tuned, Some(SortParams::e17_u256()));
        assert!(outcomes[0].result.is_ok() && !outcomes[0].quarantined);
        // Job 2 is quarantined by the open rung-0 breaker and steps DOWN
        // the ladder to rung 1 instead of the hardcoded constant.
        assert!(outcomes[1].quarantined);
        assert_eq!(outcomes[1].tuned, Some(SortParams::e15_u512()));
        assert!(!outcomes[1].degraded, "rung 1 is certified, not degraded");
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(outcomes[1].result.as_ref().expect("stepped job verifies").run.output, expect);
        // Job 3 steps down too, and its fallback rescue opens rung 1's
        // breaker — stepped-down runs feed the rung they executed on.
        assert!(outcomes[2].quarantined);
        assert_eq!(outcomes[2].tuned, Some(SortParams::e15_u512()));
        // Job 4 finds every rung's breaker open and fails closed: an
        // uncertified config is never executed.
        assert!(matches!(
            &outcomes[3].result,
            Err(SortError::Uncertified { why, .. }) if why.contains("exhausted")
        ));
        assert_eq!(outcomes[3].tuned, None);

        let sc = svc.counters();
        assert_eq!(sc.tuned_jobs, 3);
        assert_eq!(sc.ladder_steps, 2);
        assert_eq!(sc.uncertified_rejected, 1);
        assert_eq!(sc.quarantined, 3);
        assert_eq!(sc.breaker_opens, 2);
        let open = svc
            .breaker_snapshots()
            .iter()
            .filter(|s| s.3 == BreakerState::Open)
            .map(|s| (s.1, s.2))
            .collect::<Vec<_>>();
        assert_eq!(open, vec![(17, 256), (15, 512)]);
    }

    #[test]
    fn canary_rollback_is_deterministic_and_promotion_moves_the_rung() {
        use crate::cert::build_certificate_table;
        use crate::sort::pipeline::SortConfig;
        use crate::tuning::{build_tuning_table, CanaryPolicy};

        let run = |poison_third: bool| {
            let table = build_tuning_table(&build_certificate_table());
            let mut svc = SortService::new(RobustConfig::new(SortConfig::paper_e17_u256()));
            svc.enable_tuning(
                table,
                TuningPolicy {
                    canary: Some(CanaryPolicy {
                        candidate: SortParams::e15_u512(),
                        every: 3,
                        promote_after: 2,
                    }),
                },
            )
            .expect("table verifies");
            let input = InputSpec::UniformRandom { seed: 91 }.generate(4500);
            for i in 1..=7 {
                let plan = if poison_third && i == 3 {
                    FaultPlan::from_sites(vec![site(
                        0,
                        0,
                        FaultKind::StuckBank { bank: 1, bit: 3 },
                        Persistence::Sticky,
                    )])
                } else {
                    FaultPlan::none()
                };
                svc.submit_with_faults(
                    &format!("job-{i}"),
                    input.clone(),
                    SortAlgorithm::CfMerge,
                    plan,
                    None,
                );
            }
            let outcomes = svc.drain();
            let trace: Vec<(Option<SortParams>, bool)> =
                outcomes.iter().map(|o| (o.tuned, o.canary)).collect();
            (svc, trace)
        };

        // Rollback: the poisoned canary (job 3, the cadence's first
        // firing) is rescued by the fallback, so the candidate is
        // retired and every later job stays on the active rung — and a
        // replay of the same batch is bit-identical.
        let (svc_a, trace_a) = run(true);
        let (_, trace_b) = run(true);
        assert_eq!(trace_a, trace_b, "canary decisions replay bit-identically");
        assert_eq!(trace_a[2], (Some(SortParams::e15_u512()), true));
        assert!(trace_a.iter().enumerate().all(|(i, t)| i == 2 || !t.1), "one canary fired");
        assert!(trace_a
            .iter()
            .enumerate()
            .all(|(i, t)| i == 2 || t.0 == Some(SortParams::e17_u256())));
        let sc = svc_a.counters();
        assert_eq!((sc.canary_jobs, sc.canary_rollbacks, sc.canary_promotions), (1, 1, 0));

        // Promotion: clean canaries at jobs 3 and 6 reach the streak of
        // two; job 7 then runs the candidate as the new active rung.
        let (svc_c, trace_c) = run(false);
        assert_eq!(trace_c[2], (Some(SortParams::e15_u512()), true));
        assert_eq!(trace_c[5], (Some(SortParams::e15_u512()), true));
        assert_eq!(trace_c[6], (Some(SortParams::e15_u512()), false), "promoted");
        assert_eq!(trace_c[3], (Some(SortParams::e17_u256()), false));
        let sc = svc_c.counters();
        assert_eq!((sc.canary_jobs, sc.canary_rollbacks, sc.canary_promotions), (2, 0, 1));
    }

    #[test]
    fn tuning_fails_closed_on_thrust_and_rejects_corrupt_tables() {
        use crate::cert::build_certificate_table;
        use crate::sort::pipeline::SortConfig;
        use crate::tuning::build_tuning_table;

        let table = build_tuning_table(&build_certificate_table());

        // A tampered checksum can never be installed.
        let mut corrupt = table.clone();
        corrupt.checksum = "fnv1a64:0000000000000000".to_string();
        let mut svc = SortService::new(RobustConfig::new(SortConfig::paper_e17_u256()));
        assert!(matches!(
            svc.enable_tuning(corrupt, TuningPolicy::default()),
            Err(SortError::Uncertified { .. })
        ));

        // Thrust's serial merge has no certified degree bound: its
        // ladder is empty and every job fails closed.
        svc.enable_tuning(table, TuningPolicy::default()).expect("genuine table verifies");
        let input = InputSpec::UniformRandom { seed: 92 }.generate(4500);
        svc.submit("thrust-job", input, SortAlgorithm::ThrustMergesort);
        let outcomes = svc.drain();
        assert!(matches!(
            &outcomes[0].result,
            Err(SortError::Uncertified { algo, .. }) if algo == "thrust"
        ));
        assert_eq!(svc.counters().uncertified_rejected, 1);
        assert_eq!(svc.counters().executed, 0, "rejected before execution");
    }

    #[test]
    fn degraded_rungs_carry_the_explicit_marker() {
        use crate::cert::build_certificate_table;
        use crate::sort::pipeline::SortConfig;
        use crate::tuning::build_tuning_table;
        use cfmerge_gpu_sim::device::Device;

        // On the 64-bit-bank profile every cf rung is degraded tier.
        let table = build_tuning_table(&build_certificate_table());
        let cfg =
            SortConfig { device: Device::kepler_64bit_like(), ..SortConfig::paper_e17_u256() };
        let mut svc = SortService::new(RobustConfig::new(cfg));
        svc.enable_tuning(table, TuningPolicy::default()).expect("table verifies");
        let input = InputSpec::UniformRandom { seed: 93 }.generate(4500);
        svc.submit("degraded-job", input.clone(), SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        assert!(outcomes[0].degraded, "degraded-tier rung is explicitly marked");
        assert_eq!(outcomes[0].tuned, Some(SortParams::e17_u256()));
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(outcomes[0].result.as_ref().expect("verified").run.output, expect);
    }

    #[test]
    fn budget_exhaustion_degrades_to_fallback_not_retry_storms() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                retry_budget: RetryBudgetConfig::bounded(1.0),
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 49 }.generate(2 * 160);
        let faulty = || {
            FaultPlan::from_sites(vec![site(
                0,
                1,
                FaultKind::StuckBank { bank: 0, bit: 0 },
                Persistence::Transient,
            )])
        };
        svc.submit_with_faults("first", input.clone(), SortAlgorithm::CfMerge, faulty(), None);
        svc.submit_with_faults("second", input.clone(), SortAlgorithm::CfMerge, faulty(), None);
        let outcomes = svc.drain();
        // First job spends the lone token on its retry.
        let r0 = outcomes[0].result.as_ref().expect("first recovers by retry");
        assert_eq!(r0.report.counters.retries, 1);
        assert_eq!(r0.report.counters.fallbacks, 0);
        assert_eq!(outcomes[0].retries_granted, 1);
        // Second job gets zero retries and degrades straight to the
        // fallback — still verified sorted.
        assert_eq!(outcomes[1].retries_granted, 0);
        let r1 = outcomes[1].result.as_ref().expect("second rescued by fallback");
        assert_eq!(r1.report.counters.retries, 0);
        assert_eq!(r1.report.counters.fallbacks, 1);
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(r1.run.output, expect);
        // Both jobs were capped below their full per-job retry cap.
        assert_eq!(svc.counters().budget_denied, 2);
        assert_eq!(svc.budget_tokens(), Some(0.0));
    }

    #[test]
    fn telemetry_is_purely_observational_and_deterministic() {
        let run_batch = |telemetry: bool| {
            let mut svc = SortService::with_resilience(
                small_rcfg(),
                ResilienceConfig {
                    retry_budget: RetryBudgetConfig::bounded(4.0),
                    breaker: BreakerConfig {
                        enabled: true,
                        failure_threshold: 1,
                        cooldown_s: 1e-6,
                    },
                    ..ResilienceConfig::default()
                },
            );
            if telemetry {
                svc.enable_telemetry();
            }
            let input = InputSpec::UniformRandom { seed: 77 }.generate(2 * 160);
            let poison = FaultPlan::from_sites(vec![site(
                0,
                0,
                FaultKind::StuckBank { bank: 1, bit: 3 },
                Persistence::Sticky,
            )]);
            svc.submit_with_faults("trip", input.clone(), SortAlgorithm::CfMerge, poison, None);
            svc.submit("clean-1", input.clone(), SortAlgorithm::CfMerge);
            svc.submit("clean-2", input, SortAlgorithm::CfMerge);
            let outcomes = svc.drain();
            (svc, outcomes)
        };

        let (off, out_off) = run_batch(false);
        let (on, out_on) = run_batch(true);

        // Zero-cost observer: outcomes and modeled time are bit-identical
        // whether telemetry is on or off.
        assert_eq!(off.clock_s(), on.clock_s());
        assert_eq!(off.counters(), on.counters());
        for (a, b) in out_off.iter().zip(&out_on) {
            assert_eq!(a.result.is_ok(), b.result.is_ok());
            if let (Ok(ra), Ok(rb)) = (&a.result, &b.result) {
                assert_eq!(ra.run.simulated_seconds, rb.run.simulated_seconds);
                assert_eq!(ra.run.output, rb.run.output);
            }
        }
        assert!(off.telemetry_snapshot().is_none());

        // The snapshot itself is deterministic (two identical runs agree
        // byte for byte) and reports the expected latency distribution.
        let snap = on.telemetry_snapshot().expect("telemetry enabled");
        let snap2 = run_batch(true).0.telemetry_snapshot().expect("telemetry enabled");
        assert_eq!(
            snap.to_json().to_string_pretty(),
            snap2.to_json().to_string_pretty(),
            "telemetry snapshots must be bit-stable"
        );
        let lat = snap.histogram("service_job_latency_seconds").expect("latency histogram");
        assert_eq!(lat.count, 3, "all three jobs verified");
        assert!(lat.p50 > 0 && lat.p50 <= lat.p99 && lat.p99 <= lat.p999);
        assert!(snap.get("service_breaker_opens_total").is_some());
        assert!(snap.histogram("service_queue_depth_at_admission").is_some());
    }

    #[test]
    fn service_kill_and_resume_round_trip() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 50 }.generate(4 * 160 + 5);
        let mut svc = SortService::new(rcfg.clone());
        svc.submit("whole", input.clone(), SortAlgorithm::CfMerge);
        let whole = svc.drain().remove(0).result.expect("whole run");

        let mut svc2 = SortService::new(rcfg);
        svc2.submit_with_policy(
            "killed",
            input,
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            None,
            CheckpointPolicy::kill_after(0),
        );
        let killed = svc2.drain().remove(0);
        let cp = match killed.result {
            Err(SortError::Interrupted { checkpoint, .. }) => *checkpoint,
            other => panic!("expected Interrupted, got {other:?}"),
        };
        svc2.submit_resume("resumed", cp, FaultPlan::none(), None);
        let resumed = svc2.drain().remove(0).result.expect("resume succeeds");
        assert_eq!(resumed.run.output, whole.run.output);
        assert_eq!(resumed.run.simulated_seconds, whole.run.simulated_seconds);
        assert_eq!(svc2.counters().resumed, 1);
    }
}
