//! The resilient batch sort service: admission control, circuit
//! breakers, a service-wide retry budget, and checkpoint/resume layered
//! over the robust driver.
//!
//! Everything here is deterministic. [`SortService::drain`] executes the
//! batch *sequentially in submission order* (each job is internally
//! parallel via the robust driver), and the service clock advances by
//! each completed job's modeled seconds — so breaker cooldowns, budget
//! refill, and probe scheduling are pure functions of the job sequence.
//! With the default [`ResilienceConfig`] (everything off) the service
//! behaves exactly like the legacy batch front-end.

use cfmerge_gpu_sim::fault::FaultPlan;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};

use crate::params::SortParams;
use crate::recovery::{
    resume_sort_robust, simulate_sort_robust, simulate_sort_robust_checkpointed, RecoveryCounters,
    RobustConfig, RobustSortRun,
};
use crate::resilience::admission::{estimate_sort_seconds, AdmissionConfig, ShedPolicy};
use crate::resilience::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Route};
use crate::resilience::budget::{RetryBudget, RetryBudgetConfig};
use crate::resilience::checkpoint::{CheckpointPolicy, SortCheckpoint};
use crate::sort::pipeline::SortAlgorithm;
use crate::sort::SortError;
use crate::telemetry::{MetricsRegistry, MetricsSnapshot};

/// Handle to a job submitted to a [`SortService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// The service's resilience policy; the default switches every mechanism
/// off, which reproduces the legacy service bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Queue bound and shed policy.
    pub admission: AdmissionConfig,
    /// Service-wide retry token bucket.
    pub retry_budget: RetryBudgetConfig,
    /// Per-(pipeline, launch-config) circuit breakers.
    pub breaker: BreakerConfig,
}

/// What a job sorts: fresh input, or a checkpoint to resume.
enum Payload {
    Fresh { input: Vec<u32>, algo: SortAlgorithm },
    Resume { checkpoint: Box<SortCheckpoint> },
}

struct Job {
    id: JobId,
    label: String,
    payload: Payload,
    plan: FaultPlan,
    deadline_s: Option<f64>,
    cancelled: bool,
    checkpoint_policy: CheckpointPolicy,
    /// Set at admission time when the job was refused or shed; such jobs
    /// never execute, not even partially.
    pre_shed: Option<SortError>,
    /// Key count, for admission sizing.
    n: usize,
}

impl Job {
    fn admitted(&self) -> bool {
        self.pre_shed.is_none() && !self.cancelled
    }

    fn algo_label(&self) -> String {
        match &self.payload {
            Payload::Fresh { algo, .. } => algo.label().to_string(),
            Payload::Resume { checkpoint } => checkpoint.algorithm.clone(),
        }
    }
}

/// How one service job ended.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's handle.
    pub id: JobId,
    /// The label it was submitted under.
    pub label: String,
    /// The verified run — or the typed reason there isn't one.
    pub result: Result<RobustSortRun<u32>, SortError>,
    /// The job ran on the quarantine config because its breaker was
    /// open.
    pub quarantined: bool,
    /// The job was a half-open breaker probe.
    pub probe: bool,
    /// The per-block retry cap the budget granted this job.
    pub retries_granted: u32,
    /// Checkpoints captured during the run (empty unless the job was
    /// submitted with a non-noop [`CheckpointPolicy`]).
    pub checkpoints: Vec<SortCheckpoint>,
}

impl JobOutcome {
    /// The job's recovery counters; for failed jobs, a zeroed set with
    /// `unrecovered = 1` when the failure was an unrecoverable fault.
    #[must_use]
    pub fn counters(&self) -> RecoveryCounters {
        match &self.result {
            Ok(run) => run.report.counters,
            Err(SortError::UnrecoverableFault { .. }) => {
                RecoveryCounters { unrecovered: 1, ..RecoveryCounters::default() }
            }
            Err(_) => RecoveryCounters::default(),
        }
    }
}

/// Sum the counters of a batch of outcomes (the artifact-level "N
/// injected / N detected / N recovered" statement).
#[must_use]
pub fn aggregate_counters(outcomes: &[JobOutcome]) -> RecoveryCounters {
    let mut total = RecoveryCounters::default();
    for o in outcomes {
        total.merge(&o.counters());
    }
    total
}

/// Lifetime tallies of every resilience decision the service made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs ever submitted (sheds and cancels included).
    pub submitted: u64,
    /// Jobs the queue accepted (some may be shed later by
    /// [`ShedPolicy::RejectLargest`] / [`ShedPolicy::DeadlineAware`]).
    pub admitted: u64,
    /// Jobs that actually ran the robust driver.
    pub executed: u64,
    /// Executed jobs that returned a verified sorted output in deadline.
    pub verified_ok: u64,
    /// Executed jobs that ended in a typed error.
    pub failed: u64,
    /// Jobs cancelled before execution.
    pub cancelled: u64,
    /// Incoming jobs refused with [`SortError::Overloaded`].
    pub shed_overload: u64,
    /// Queued jobs evicted by [`ShedPolicy::RejectLargest`].
    pub shed_largest: u64,
    /// Queued jobs shed by [`ShedPolicy::DeadlineAware`].
    pub shed_deadline: u64,
    /// Submissions refused with [`SortError::InvalidDeadline`].
    pub invalid_deadline: u64,
    /// Jobs whose retry cap was reduced by the budget.
    pub budget_denied: u64,
    /// Breaker transitions into `Open`.
    pub breaker_opens: u64,
    /// Breaker transitions into `HalfOpen`.
    pub breaker_half_opens: u64,
    /// Breaker transitions into `Closed`.
    pub breaker_closes: u64,
    /// Jobs routed to the quarantine config by an open breaker.
    pub quarantined: u64,
    /// Jobs run as half-open breaker probes.
    pub probes: u64,
    /// Checkpoint-resume jobs executed.
    pub resumed: u64,
    /// Checkpoints captured across all jobs.
    pub checkpoints_taken: u64,
    /// Whole-device crash events observed by the cluster layer.
    pub device_crashes: u64,
    /// Devices that rejoined after a crash-with-restart cooldown.
    pub device_restarts: u64,
    /// Jobs that ended in a typed [`SortError::DeviceLost`].
    pub device_lost: u64,
    /// Checkpoint migrations that moved an interrupted job to a
    /// surviving device.
    pub migrations: u64,
    /// Migrations that could not complete ([`SortError::MigrationFailed`]).
    pub migrations_failed: u64,
    /// Jobs a free device stole from another device's queue.
    pub steals: u64,
}

impl ServiceCounters {
    /// Fold `other` into `self` field by field.
    pub fn merge(&mut self, other: &ServiceCounters) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.executed += other.executed;
        self.verified_ok += other.verified_ok;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.shed_overload += other.shed_overload;
        self.shed_largest += other.shed_largest;
        self.shed_deadline += other.shed_deadline;
        self.invalid_deadline += other.invalid_deadline;
        self.budget_denied += other.budget_denied;
        self.breaker_opens += other.breaker_opens;
        self.breaker_half_opens += other.breaker_half_opens;
        self.breaker_closes += other.breaker_closes;
        self.quarantined += other.quarantined;
        self.probes += other.probes;
        self.resumed += other.resumed;
        self.checkpoints_taken += other.checkpoints_taken;
        self.device_crashes += other.device_crashes;
        self.device_restarts += other.device_restarts;
        self.device_lost += other.device_lost;
        self.migrations += other.migrations;
        self.migrations_failed += other.migrations_failed;
        self.steals += other.steals;
    }
}

impl ToJson for ServiceCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("submitted", Json::from(self.submitted)),
            ("admitted", Json::from(self.admitted)),
            ("executed", Json::from(self.executed)),
            ("verified_ok", Json::from(self.verified_ok)),
            ("failed", Json::from(self.failed)),
            ("cancelled", Json::from(self.cancelled)),
            ("shed_overload", Json::from(self.shed_overload)),
            ("shed_largest", Json::from(self.shed_largest)),
            ("shed_deadline", Json::from(self.shed_deadline)),
            ("invalid_deadline", Json::from(self.invalid_deadline)),
            ("budget_denied", Json::from(self.budget_denied)),
            ("breaker_opens", Json::from(self.breaker_opens)),
            ("breaker_half_opens", Json::from(self.breaker_half_opens)),
            ("breaker_closes", Json::from(self.breaker_closes)),
            ("quarantined", Json::from(self.quarantined)),
            ("probes", Json::from(self.probes)),
            ("resumed", Json::from(self.resumed)),
            ("checkpoints_taken", Json::from(self.checkpoints_taken)),
            ("device_crashes", Json::from(self.device_crashes)),
            ("device_restarts", Json::from(self.device_restarts)),
            ("device_lost", Json::from(self.device_lost)),
            ("migrations", Json::from(self.migrations)),
            ("migrations_failed", Json::from(self.migrations_failed)),
            ("steals", Json::from(self.steals)),
        ])
    }
}

impl FromJson for ServiceCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            submitted: v.field("submitted")?,
            admitted: v.field("admitted")?,
            executed: v.field("executed")?,
            verified_ok: v.field("verified_ok")?,
            failed: v.field("failed")?,
            cancelled: v.field("cancelled")?,
            shed_overload: v.field("shed_overload")?,
            shed_largest: v.field("shed_largest")?,
            shed_deadline: v.field("shed_deadline")?,
            invalid_deadline: v.field("invalid_deadline")?,
            budget_denied: v.field("budget_denied")?,
            breaker_opens: v.field("breaker_opens")?,
            breaker_half_opens: v.field("breaker_half_opens")?,
            breaker_closes: v.field("breaker_closes")?,
            quarantined: v.field("quarantined")?,
            probes: v.field("probes")?,
            resumed: v.field("resumed")?,
            checkpoints_taken: v.field("checkpoints_taken")?,
            // Cluster-era fields (PR 8): absent from older artifacts.
            device_crashes: v.field_opt("device_crashes")?.unwrap_or(0),
            device_restarts: v.field_opt("device_restarts")?.unwrap_or(0),
            device_lost: v.field_opt("device_lost")?.unwrap_or(0),
            migrations: v.field_opt("migrations")?.unwrap_or(0),
            migrations_failed: v.field_opt("migrations_failed")?.unwrap_or(0),
            steals: v.field_opt("steals")?.unwrap_or(0),
        })
    }
}

/// Degradation-aware batch front-end over the robust driver: submit jobs
/// (optionally with fault plans, deadlines, and checkpoint policies),
/// cancel any of them, then [`SortService::drain`] executes the batch
/// deterministically and returns per-job typed outcomes.
pub struct SortService {
    config: RobustConfig,
    resilience: ResilienceConfig,
    jobs: Vec<Job>,
    next_id: u64,
    budget: RetryBudget,
    breakers: Vec<((String, usize, usize), CircuitBreaker)>,
    clock_s: f64,
    counters: ServiceCounters,
    /// Opt-in metrics (the zero-cost-observer pattern: `None` — the
    /// default — records nothing, and recording never feeds back into
    /// modeled time, so enabling telemetry leaves every job outcome and
    /// modeled second bit-identical).
    telemetry: Option<MetricsRegistry>,
}

impl SortService {
    /// A service running every job under `config`, with every resilience
    /// mechanism off (legacy behavior).
    #[must_use]
    pub fn new(config: RobustConfig) -> Self {
        Self::with_resilience(config, ResilienceConfig::default())
    }

    /// A service under `config` with an explicit resilience policy.
    #[must_use]
    pub fn with_resilience(config: RobustConfig, resilience: ResilienceConfig) -> Self {
        Self {
            config,
            resilience,
            jobs: Vec::new(),
            next_id: 0,
            budget: RetryBudget::new(resilience.retry_budget),
            breakers: Vec::new(),
            clock_s: 0.0,
            counters: ServiceCounters::default(),
            telemetry: None,
        }
    }

    /// Lifetime resilience tallies.
    #[must_use]
    pub fn counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// Switch telemetry on: from here on the service records queue depth
    /// at admission, per-job end-to-end latency (modeled seconds),
    /// breaker transitions, retry-budget level, and the per-job recovery
    /// counters into a [`MetricsRegistry`]. Purely observational — job
    /// outcomes and modeled time are unchanged.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(MetricsRegistry::new());
        }
    }

    /// Frozen view of the telemetry recorded so far (`None` unless
    /// [`SortService::enable_telemetry`] was called).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<MetricsSnapshot> {
        self.telemetry.as_ref().map(MetricsRegistry::snapshot)
    }

    /// The modeled service clock: the sum of every executed job's
    /// simulated seconds so far.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Advance the service clock to the cluster's global event time (a
    /// device that sat idle still saw its retry budget refill and its
    /// breaker cooldowns tick). Never moves the clock backwards, and is
    /// a no-op in the single-device batch pattern where dispatch times
    /// coincide with the accumulated clock — which is exactly why N=1
    /// fault-free cluster runs stay bit-identical to [`SortService`].
    pub(crate) fn sync_clock(&mut self, now_s: f64) {
        if now_s > self.clock_s {
            self.clock_s = now_s;
        }
    }

    /// Retry tokens currently in the budget (`None` when unlimited).
    #[must_use]
    pub fn budget_tokens(&self) -> Option<f64> {
        self.budget.tokens()
    }

    /// Snapshot of every breaker the service has instantiated:
    /// `(pipeline label, E, u, state, opens)`.
    #[must_use]
    pub fn breaker_snapshots(&self) -> Vec<(String, usize, usize, BreakerState, u64)> {
        self.breakers
            .iter()
            .map(|((label, e, u), b)| (label.clone(), *e, *u, b.state(), b.opens()))
            .collect()
    }

    /// Submit a production job (no fault injection, no deadline).
    pub fn submit(&mut self, label: &str, input: Vec<u32>, algo: SortAlgorithm) -> JobId {
        self.submit_with_faults(label, input, algo, FaultPlan::none(), None)
    }

    /// Submit a job with a fault plan and an optional deadline in modeled
    /// seconds. A job whose modeled completion time (retries, backoff,
    /// and spikes included) exceeds the deadline fails with
    /// [`SortError::DeadlineExceeded`].
    pub fn submit_with_faults(
        &mut self,
        label: &str,
        input: Vec<u32>,
        algo: SortAlgorithm,
        plan: FaultPlan,
        deadline_s: Option<f64>,
    ) -> JobId {
        self.submit_with_policy(label, input, algo, plan, deadline_s, CheckpointPolicy::default())
    }

    /// Submit a job that also captures checkpoints under `policy` (and,
    /// for a kill policy, dies with [`SortError::Interrupted`] carrying
    /// the checkpoint to resume from).
    pub fn submit_with_policy(
        &mut self,
        label: &str,
        input: Vec<u32>,
        algo: SortAlgorithm,
        plan: FaultPlan,
        deadline_s: Option<f64>,
        policy: CheckpointPolicy,
    ) -> JobId {
        let n = input.len();
        self.enqueue(Job {
            id: JobId(0), // assigned by enqueue
            label: label.to_string(),
            payload: Payload::Fresh { input, algo },
            plan,
            deadline_s,
            cancelled: false,
            checkpoint_policy: policy,
            pre_shed: None,
            n,
        })
    }

    /// Submit a resume of an interrupted job from its checkpoint. The
    /// checkpoint's integrity is validated at execution time; tampered or
    /// mismatched checkpoints fail with [`SortError::CheckpointInvalid`].
    pub fn submit_resume(
        &mut self,
        label: &str,
        checkpoint: SortCheckpoint,
        plan: FaultPlan,
        deadline_s: Option<f64>,
    ) -> JobId {
        let n = checkpoint.n;
        self.enqueue(Job {
            id: JobId(0),
            label: label.to_string(),
            payload: Payload::Resume { checkpoint: Box::new(checkpoint) },
            plan,
            deadline_s,
            cancelled: false,
            checkpoint_policy: CheckpointPolicy::default(),
            pre_shed: None,
            n,
        })
    }

    /// Assign an id, run admission control, and queue the job. Ids are
    /// monotonically increasing for the lifetime of the service — they
    /// are never reused across batches, so a stale handle from a drained
    /// batch can never cancel a newer job.
    fn enqueue(&mut self, mut job: Job) -> JobId {
        job.id = JobId(self.next_id);
        self.next_id += 1;
        self.counters.submitted += 1;

        // Deadline sanity comes first: a NaN or negative deadline is a
        // caller bug, not load.
        if let Some(d) = job.deadline_s {
            if !d.is_finite() || d < 0.0 {
                self.counters.invalid_deadline += 1;
                job.pre_shed = Some(SortError::InvalidDeadline { deadline_s: d });
                let id = job.id;
                self.jobs.push(job);
                self.record_admission(false);
                return id;
            }
        }

        match self.resilience.admission.capacity {
            Some(capacity) if self.admitted_count() >= capacity => {
                self.apply_shed_policy(&mut job, capacity);
            }
            _ => {}
        }
        let admitted = job.pre_shed.is_none();
        if admitted {
            self.counters.admitted += 1;
        }
        let id = job.id;
        self.jobs.push(job);
        self.record_admission(admitted);
        id
    }

    /// Telemetry hook for one admission event: the submission counter and
    /// the queue depth *after* the decision, both as a histogram sample
    /// (the time series the ROADMAP's traffic-scale work wants) and as a
    /// last-value gauge.
    fn record_admission(&mut self, admitted: bool) {
        if self.telemetry.is_none() {
            return;
        }
        let depth = self.admitted_count() as u64;
        let reg = self.telemetry.as_mut().expect("checked above");
        reg.inc("service_jobs_submitted_total", 1);
        if admitted {
            reg.inc("service_jobs_admitted_total", 1);
        }
        reg.observe("service_queue_depth_at_admission", depth);
        reg.set_gauge("service_queue_depth", depth as f64);
    }

    fn admitted_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.admitted()).count()
    }

    /// The queue is full: decide who pays, per the configured policy.
    fn apply_shed_policy(&mut self, incoming: &mut Job, capacity: usize) {
        match self.resilience.admission.policy {
            ShedPolicy::RejectNewest => {
                self.counters.shed_overload += 1;
                incoming.pre_shed = Some(SortError::Overloaded { capacity });
            }
            ShedPolicy::RejectLargest => {
                // Evict the largest queued job (ties to the newest) if it
                // is at least as large as the incoming one.
                let victim = self
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| j.admitted() && j.n >= incoming.n)
                    .max_by_key(|(i, j)| (j.n, *i))
                    .map(|(i, _)| i);
                match victim {
                    Some(i) => {
                        self.counters.shed_largest += 1;
                        let n = self.jobs[i].n;
                        self.jobs[i].pre_shed = Some(SortError::Shed {
                            policy: ShedPolicy::RejectLargest.label(),
                            reason: format!(
                                "evicted ({n} keys) for a newer {}-key job with the queue at \
                                 capacity {capacity}",
                                incoming.n
                            ),
                        });
                    }
                    None => {
                        self.counters.shed_overload += 1;
                        incoming.pre_shed = Some(SortError::Overloaded { capacity });
                    }
                }
            }
            ShedPolicy::DeadlineAware => {
                // Shed queued jobs that provably cannot meet their own
                // deadline: the optimistic lower-bound estimate already
                // exceeds it, so running them would only burn modeled
                // time ahead of feasible work.
                let mut shed_any = false;
                for j in &mut self.jobs {
                    if !j.admitted() {
                        continue;
                    }
                    if let Some(d) = j.deadline_s {
                        let floor = estimate_sort_seconds(j.n, &self.config.base);
                        if floor > d {
                            shed_any = true;
                            self.counters.shed_deadline += 1;
                            j.pre_shed = Some(SortError::Shed {
                                policy: ShedPolicy::DeadlineAware.label(),
                                reason: format!(
                                    "deadline {d:.3e}s unreachable: optimistic lower bound is \
                                     {floor:.3e}s"
                                ),
                            });
                        }
                    }
                }
                if !shed_any {
                    self.counters.shed_overload += 1;
                    incoming.pre_shed = Some(SortError::Overloaded { capacity });
                }
            }
        }
    }

    /// Cancel a pending job. Returns `false` if the id is unknown (or the
    /// batch containing it already ran).
    pub fn cancel(&mut self, id: JobId) -> bool {
        match self.jobs.iter_mut().find(|j| j.id == id) {
            Some(job) => {
                job.cancelled = true;
                true
            }
            None => false,
        }
    }

    /// Number of jobs waiting in the current batch (cancelled and shed
    /// included — they still produce an outcome).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.jobs.len()
    }

    /// Execute every submitted job and drain the batch. Outcomes come
    /// back in submission order; cancelled jobs yield
    /// [`SortError::Cancelled`] and shed jobs their typed shed error,
    /// without running. Deterministic: jobs run sequentially in
    /// submission order and all scheduling is in modeled time.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        let jobs = std::mem::take(&mut self.jobs);
        jobs.into_iter().map(|job| self.execute(job)).collect()
    }

    /// Legacy alias for [`SortService::drain`].
    pub fn run_all(&mut self) -> Vec<JobOutcome> {
        self.drain()
    }

    fn breaker_for(&mut self, key: (String, usize, usize)) -> &mut CircuitBreaker {
        if let Some(i) = self.breakers.iter().position(|(k, _)| *k == key) {
            return &mut self.breakers[i].1;
        }
        self.breakers.push((key, CircuitBreaker::new()));
        &mut self.breakers.last_mut().expect("just pushed").1
    }

    /// Tally breaker transitions that happened after index `from`.
    fn tally_breaker_transitions(&mut self, key: &(String, usize, usize), from: usize) {
        let Some((_, b)) = self.breakers.iter().find(|(k, _)| k == key) else { return };
        for t in &b.transitions()[from..] {
            let name = match t.to {
                BreakerState::Open => {
                    self.counters.breaker_opens += 1;
                    "service_breaker_opens_total"
                }
                BreakerState::HalfOpen => {
                    self.counters.breaker_half_opens += 1;
                    "service_breaker_half_opens_total"
                }
                BreakerState::Closed => {
                    self.counters.breaker_closes += 1;
                    "service_breaker_closes_total"
                }
            };
            if let Some(reg) = &mut self.telemetry {
                reg.inc(name, 1);
            }
        }
    }

    fn execute(&mut self, job: Job) -> JobOutcome {
        if let Some(err) = job.pre_shed {
            if let Some(reg) = &mut self.telemetry {
                reg.inc("service_jobs_shed_total", 1);
            }
            return JobOutcome {
                id: job.id,
                label: job.label,
                result: Err(err),
                quarantined: false,
                probe: false,
                retries_granted: 0,
                checkpoints: Vec::new(),
            };
        }
        if job.cancelled {
            self.counters.cancelled += 1;
            if let Some(reg) = &mut self.telemetry {
                reg.inc("service_jobs_cancelled_total", 1);
            }
            return JobOutcome {
                id: job.id,
                label: job.label,
                result: Err(SortError::Cancelled),
                quarantined: false,
                probe: false,
                retries_granted: 0,
                checkpoints: Vec::new(),
            };
        }
        self.counters.executed += 1;

        // Breaker routing. Resumes are pinned to their checkpoint's
        // launch config, so they bypass the breaker entirely: they can
        // neither be quarantined (the checkpoint's shape would not
        // match) nor serve as probes.
        let is_resume = matches!(job.payload, Payload::Resume { .. });
        let key = (job.algo_label(), self.config.base.params.e, self.config.base.params.u);
        let transitions_before =
            self.breakers.iter().find(|(k, _)| *k == key).map_or(0, |(_, b)| b.transitions().len());
        let route = if self.resilience.breaker.enabled && !is_resume {
            let now = self.clock_s;
            self.breaker_for(key.clone()).route(now)
        } else {
            Route::Normal
        };
        let quarantined = route == Route::Quarantine;
        let probe = route == Route::Probe;
        if quarantined {
            self.counters.quarantined += 1;
        }
        if probe {
            self.counters.probes += 1;
        }

        // Budget grant: the effective per-block retry cap for this job.
        self.budget.advance_to(self.clock_s);
        let want = self.config.max_retries;
        let granted = self.budget.grant(want);
        if granted < want {
            self.counters.budget_denied += 1;
        }

        let mut cfg = self.config.clone();
        cfg.max_retries = granted;
        if quarantined {
            // Substitute the known-good paper config while the breaker
            // cools down.
            cfg.base.params = SortParams::e17_u256();
        }

        let mut checkpoints = Vec::new();
        let result = match &job.payload {
            Payload::Resume { checkpoint } => {
                self.counters.resumed += 1;
                resume_sort_robust::<u32>(checkpoint, &cfg, &job.plan)
            }
            Payload::Fresh { input, algo } if !job.checkpoint_policy.is_noop() => {
                simulate_sort_robust_checkpointed(
                    input,
                    *algo,
                    &cfg,
                    &job.plan,
                    job.checkpoint_policy,
                )
                .map(|(run, taken)| {
                    checkpoints = taken;
                    run
                })
            }
            Payload::Fresh { input, algo } => simulate_sort_robust(input, *algo, &cfg, &job.plan),
        };
        self.counters.checkpoints_taken += checkpoints.len() as u64;

        // Settle the budget and the breaker on the run's real outcome,
        // then advance the modeled clock.
        let elapsed = match &result {
            Ok(run) => {
                self.budget.debit(run.report.counters.retries);
                run.run.simulated_seconds
            }
            Err(_) => 0.0,
        };
        if self.resilience.breaker.enabled && !is_resume && !quarantined {
            // Success means the requested config carried the job without
            // pipeline-level degradation; a fallback rescue is a health
            // failure of the config even though the job's output is fine.
            let success = match &result {
                Ok(run) => run.report.counters.fallbacks == 0,
                Err(_) => false,
            };
            let at = self.clock_s + elapsed;
            let bc = self.resilience.breaker;
            self.breaker_for(key.clone()).on_outcome(success, at, &bc);
        }
        self.tally_breaker_transitions(&key, transitions_before);
        self.clock_s += elapsed;

        // Deadline enforcement on the exact modeled duration.
        let result = result.and_then(|run| match job.deadline_s {
            Some(d) if run.run.simulated_seconds > d => Err(SortError::DeadlineExceeded {
                deadline_s: d,
                needed_s: run.run.simulated_seconds,
            }),
            _ => Ok(run),
        });
        match &result {
            Ok(_) => self.counters.verified_ok += 1,
            Err(_) => self.counters.failed += 1,
        }

        // Telemetry settles last, from the same values the outcome is
        // built from — never the other way around.
        if let Some(reg) = &mut self.telemetry {
            reg.inc("service_jobs_executed_total", 1);
            if quarantined {
                reg.inc("service_quarantined_total", 1);
            }
            if probe {
                reg.inc("service_probes_total", 1);
            }
            if granted < want {
                reg.inc("service_budget_denied_total", 1);
            }
            match &result {
                Ok(run) => {
                    reg.inc("service_jobs_verified_total", 1);
                    reg.observe_seconds("service_job_latency_seconds", run.run.simulated_seconds);
                    reg.record_recovery("service", &run.report.counters);
                }
                Err(SortError::UnrecoverableFault { .. }) => {
                    reg.inc("service_jobs_failed_total", 1);
                    reg.inc("service_unrecovered_total", 1);
                }
                Err(_) => reg.inc("service_jobs_failed_total", 1),
            }
            if let Some(tokens) = self.budget.tokens() {
                reg.set_gauge("service_retry_budget_tokens", tokens);
            }
            reg.set_gauge("service_clock_seconds", self.clock_s);
        }

        JobOutcome {
            id: job.id,
            label: job.label,
            result,
            quarantined,
            probe,
            retries_granted: granted,
            checkpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::InputSpec;
    use crate::params::SortParams;
    use crate::sort::pipeline::SortConfig;
    use cfmerge_gpu_sim::fault::{FaultKind, FaultSite, Persistence};

    fn small_rcfg() -> RobustConfig {
        RobustConfig::new(SortConfig::with_params(SortParams::new(5, 32)))
    }

    fn site(kernel: u32, block: u32, kind: FaultKind, persistence: Persistence) -> FaultSite {
        FaultSite { kernel, block, phase: 1, kind, persistence }
    }

    #[test]
    fn service_runs_cancels_and_enforces_deadlines() {
        let mut svc = SortService::new(small_rcfg());
        let input = InputSpec::UniformRandom { seed: 18 }.generate(2 * 160);
        let ok_id = svc.submit("ok", input.clone(), SortAlgorithm::CfMerge);
        let cancel_id = svc.submit("cancel-me", input.clone(), SortAlgorithm::CfMerge);
        let tight_id = svc.submit_with_faults(
            "tight",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(1e-12),
        );
        let faulty_id = svc.submit_with_faults(
            "faulty",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::from_sites(vec![site(
                0,
                0,
                FaultKind::StuckBank { bank: 0, bit: 0 },
                Persistence::Transient,
            )]),
            Some(1.0),
        );
        assert!(svc.cancel(cancel_id));
        assert!(!svc.cancel(JobId(999)));
        assert_eq!(svc.pending(), 4);

        let outcomes = svc.run_all();
        assert_eq!(svc.pending(), 0);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].id, ok_id);
        let ok_run = outcomes[0].result.as_ref().expect("ok job");
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(ok_run.run.output, expect);
        assert_eq!(outcomes[1].id, cancel_id);
        assert!(matches!(outcomes[1].result, Err(SortError::Cancelled)));
        assert_eq!(outcomes[2].id, tight_id);
        assert!(matches!(outcomes[2].result, Err(SortError::DeadlineExceeded { .. })));
        assert_eq!(outcomes[3].id, faulty_id);
        let faulty_run = outcomes[3].result.as_ref().expect("faulty job recovers");
        assert_eq!(faulty_run.run.output, expect);

        let total = aggregate_counters(&outcomes);
        assert!(total.faults_injected >= 1);
        assert_eq!(total.faults_detected, 1);
        assert_eq!(total.retries, 1);
        assert_eq!(total.unrecovered, 0);

        let sc = svc.counters();
        assert_eq!(sc.submitted, 4);
        assert_eq!(sc.executed, 3);
        assert_eq!(sc.verified_ok, 2);
        assert_eq!(sc.failed, 1);
        assert_eq!(sc.cancelled, 1);
        assert!(svc.clock_s() > 0.0);
    }

    #[test]
    fn job_ids_never_reset_across_batches() {
        let mut svc = SortService::new(small_rcfg());
        let input = InputSpec::UniformRandom { seed: 40 }.generate(160);
        let a = svc.submit("a", input.clone(), SortAlgorithm::CfMerge);
        svc.drain();
        let b = svc.submit("b", input, SortAlgorithm::CfMerge);
        assert_ne!(a, b, "a drained batch's ids must never be reissued");
        // A stale handle from the drained batch cannot cancel anything.
        assert!(!svc.cancel(a));
        assert!(svc.cancel(b));
    }

    #[test]
    fn invalid_deadlines_are_typed_not_panics() {
        let mut svc = SortService::new(small_rcfg());
        let input = InputSpec::UniformRandom { seed: 41 }.generate(160);
        for bad in [-1.0, f64::NAN, f64::NEG_INFINITY] {
            svc.submit_with_faults(
                "bad",
                input.clone(),
                SortAlgorithm::CfMerge,
                FaultPlan::none(),
                Some(bad),
            );
        }
        // A zero deadline at t=0 is *valid* — it just cannot be met.
        svc.submit_with_faults(
            "zero",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(0.0),
        );
        let outcomes = svc.drain();
        for o in &outcomes[..3] {
            assert!(
                matches!(o.result, Err(SortError::InvalidDeadline { .. })),
                "expected InvalidDeadline, got {:?}",
                o.result
            );
        }
        assert!(matches!(outcomes[3].result, Err(SortError::DeadlineExceeded { .. })));
        assert_eq!(svc.counters().invalid_deadline, 3);
        assert_eq!(svc.counters().executed, 1);
    }

    #[test]
    fn cancelling_a_resume_job_never_executes_it() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 42 }.generate(4 * 160);
        let cp = match crate::recovery::simulate_sort_robust_checkpointed(
            &input,
            SortAlgorithm::CfMerge,
            &rcfg,
            &FaultPlan::none(),
            CheckpointPolicy::kill_after(0),
        ) {
            Err(SortError::Interrupted { checkpoint, .. }) => *checkpoint,
            other => panic!("expected Interrupted, got {other:?}"),
        };
        let mut svc = SortService::new(rcfg);
        let id = svc.submit_resume("resume", cp, FaultPlan::none(), None);
        assert!(svc.cancel(id));
        let outcomes = svc.drain();
        assert!(matches!(outcomes[0].result, Err(SortError::Cancelled)));
        assert_eq!(svc.counters().resumed, 0, "cancelled resume must not execute");
        assert_eq!(svc.clock_s(), 0.0);
    }

    #[test]
    fn reject_newest_sheds_the_incoming_job() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(2, ShedPolicy::RejectNewest),
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 43 }.generate(160);
        svc.submit("a", input.clone(), SortAlgorithm::CfMerge);
        svc.submit("b", input.clone(), SortAlgorithm::CfMerge);
        svc.submit("c", input, SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[1].result.is_ok());
        assert!(matches!(outcomes[2].result, Err(SortError::Overloaded { capacity: 2 })));
        assert_eq!(svc.counters().shed_overload, 1);
        assert_eq!(svc.counters().executed, 2);
    }

    #[test]
    fn reject_largest_evicts_the_biggest_queued_job() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(2, ShedPolicy::RejectLargest),
                ..ResilienceConfig::default()
            },
        );
        let small = InputSpec::UniformRandom { seed: 44 }.generate(160);
        let big = InputSpec::UniformRandom { seed: 45 }.generate(8 * 160);
        svc.submit("small", small.clone(), SortAlgorithm::CfMerge);
        let big_id = svc.submit("big", big, SortAlgorithm::CfMerge);
        let new_id = svc.submit("newcomer", small.clone(), SortAlgorithm::CfMerge);
        // An incoming job larger than everything queued is refused
        // instead (evicting a smaller job would not make room policy-
        // wise).
        let huge = InputSpec::UniformRandom { seed: 46 }.generate(16 * 160);
        let huge_id = svc.submit("huge", huge, SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        let by_id = |id: JobId| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(
            matches!(&by_id(big_id).result, Err(SortError::Shed { policy, .. }) if *policy == "reject-largest")
        );
        assert!(by_id(new_id).result.is_ok());
        assert!(matches!(by_id(huge_id).result, Err(SortError::Overloaded { .. })));
        assert_eq!(svc.counters().shed_largest, 1);
        assert_eq!(svc.counters().shed_overload, 1);
    }

    #[test]
    fn deadline_aware_sheds_unreachable_jobs_first() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                admission: AdmissionConfig::bounded(2, ShedPolicy::DeadlineAware),
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 47 }.generate(4 * 160);
        svc.submit("feasible", input.clone(), SortAlgorithm::CfMerge);
        let doomed = svc.submit_with_faults(
            "doomed",
            input.clone(),
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            Some(1e-15),
        );
        let late = svc.submit("latecomer", input, SortAlgorithm::CfMerge);
        let outcomes = svc.drain();
        let by_id = |id: JobId| outcomes.iter().find(|o| o.id == id).unwrap();
        assert!(
            matches!(&by_id(doomed).result, Err(SortError::Shed { policy, .. }) if *policy == "deadline-aware")
        );
        assert!(by_id(late).result.is_ok());
        assert_eq!(svc.counters().shed_deadline, 1);
        assert_eq!(svc.counters().executed, 2);
    }

    #[test]
    fn breaker_quarantines_then_probe_closes() {
        // Cooldown shorter than one job's modeled runtime (launch
        // overhead alone is 3µs): the job right after the trip is still
        // inside the cooldown window and quarantines; the one after that
        // probes and closes the breaker.
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                breaker: BreakerConfig { enabled: true, failure_threshold: 1, cooldown_s: 1e-6 },
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 48 }.generate(2 * 160);
        // A sticky fault defeats every retry and forces the Thrust
        // fallback: the output is verified but the requested config
        // failed health-wise.
        let poison = FaultPlan::from_sites(vec![site(
            0,
            0,
            FaultKind::StuckBank { bank: 1, bit: 3 },
            Persistence::Sticky,
        )]);
        svc.submit_with_faults("trip", input.clone(), SortAlgorithm::CfMerge, poison, None);
        svc.submit("clean-1", input.clone(), SortAlgorithm::CfMerge);
        svc.submit("clean-2", input.clone(), SortAlgorithm::CfMerge);
        let outcomes = svc.drain();

        assert!(outcomes[0].result.is_ok(), "fallback rescues the tripping job");
        assert!(outcomes[1].quarantined, "job inside the cooldown runs quarantined");
        let qrun = outcomes[1].result.as_ref().expect("quarantined job succeeds");
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(qrun.run.output, expect);
        // Quarantined runs use the known-good paper config: 320 keys fit
        // one E=17,u=256 tile, so the whole sort is a single blocksort
        // launch (the small 5/32 config would need a merge pass too).
        assert_eq!(qrun.run.kernels.len(), 1);
        assert_eq!(qrun.run.kernels[0].name, "blocksort");

        assert!(outcomes[2].probe, "job after the cooldown probes the real config");
        assert!(outcomes[2].result.is_ok());

        let sc = svc.counters();
        assert_eq!(sc.breaker_opens, 1);
        assert_eq!(sc.quarantined, 1);
        assert_eq!(sc.probes, 1);
        assert_eq!(sc.breaker_half_opens, 1);
        assert_eq!(sc.breaker_closes, 1);
        let snaps = svc.breaker_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].3, BreakerState::Closed);
    }

    #[test]
    fn budget_exhaustion_degrades_to_fallback_not_retry_storms() {
        let mut svc = SortService::with_resilience(
            small_rcfg(),
            ResilienceConfig {
                retry_budget: RetryBudgetConfig::bounded(1.0),
                ..ResilienceConfig::default()
            },
        );
        let input = InputSpec::UniformRandom { seed: 49 }.generate(2 * 160);
        let faulty = || {
            FaultPlan::from_sites(vec![site(
                0,
                1,
                FaultKind::StuckBank { bank: 0, bit: 0 },
                Persistence::Transient,
            )])
        };
        svc.submit_with_faults("first", input.clone(), SortAlgorithm::CfMerge, faulty(), None);
        svc.submit_with_faults("second", input.clone(), SortAlgorithm::CfMerge, faulty(), None);
        let outcomes = svc.drain();
        // First job spends the lone token on its retry.
        let r0 = outcomes[0].result.as_ref().expect("first recovers by retry");
        assert_eq!(r0.report.counters.retries, 1);
        assert_eq!(r0.report.counters.fallbacks, 0);
        assert_eq!(outcomes[0].retries_granted, 1);
        // Second job gets zero retries and degrades straight to the
        // fallback — still verified sorted.
        assert_eq!(outcomes[1].retries_granted, 0);
        let r1 = outcomes[1].result.as_ref().expect("second rescued by fallback");
        assert_eq!(r1.report.counters.retries, 0);
        assert_eq!(r1.report.counters.fallbacks, 1);
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(r1.run.output, expect);
        // Both jobs were capped below their full per-job retry cap.
        assert_eq!(svc.counters().budget_denied, 2);
        assert_eq!(svc.budget_tokens(), Some(0.0));
    }

    #[test]
    fn telemetry_is_purely_observational_and_deterministic() {
        let run_batch = |telemetry: bool| {
            let mut svc = SortService::with_resilience(
                small_rcfg(),
                ResilienceConfig {
                    retry_budget: RetryBudgetConfig::bounded(4.0),
                    breaker: BreakerConfig {
                        enabled: true,
                        failure_threshold: 1,
                        cooldown_s: 1e-6,
                    },
                    ..ResilienceConfig::default()
                },
            );
            if telemetry {
                svc.enable_telemetry();
            }
            let input = InputSpec::UniformRandom { seed: 77 }.generate(2 * 160);
            let poison = FaultPlan::from_sites(vec![site(
                0,
                0,
                FaultKind::StuckBank { bank: 1, bit: 3 },
                Persistence::Sticky,
            )]);
            svc.submit_with_faults("trip", input.clone(), SortAlgorithm::CfMerge, poison, None);
            svc.submit("clean-1", input.clone(), SortAlgorithm::CfMerge);
            svc.submit("clean-2", input, SortAlgorithm::CfMerge);
            let outcomes = svc.drain();
            (svc, outcomes)
        };

        let (off, out_off) = run_batch(false);
        let (on, out_on) = run_batch(true);

        // Zero-cost observer: outcomes and modeled time are bit-identical
        // whether telemetry is on or off.
        assert_eq!(off.clock_s(), on.clock_s());
        assert_eq!(off.counters(), on.counters());
        for (a, b) in out_off.iter().zip(&out_on) {
            assert_eq!(a.result.is_ok(), b.result.is_ok());
            if let (Ok(ra), Ok(rb)) = (&a.result, &b.result) {
                assert_eq!(ra.run.simulated_seconds, rb.run.simulated_seconds);
                assert_eq!(ra.run.output, rb.run.output);
            }
        }
        assert!(off.telemetry_snapshot().is_none());

        // The snapshot itself is deterministic (two identical runs agree
        // byte for byte) and reports the expected latency distribution.
        let snap = on.telemetry_snapshot().expect("telemetry enabled");
        let snap2 = run_batch(true).0.telemetry_snapshot().expect("telemetry enabled");
        assert_eq!(
            snap.to_json().to_string_pretty(),
            snap2.to_json().to_string_pretty(),
            "telemetry snapshots must be bit-stable"
        );
        let lat = snap.histogram("service_job_latency_seconds").expect("latency histogram");
        assert_eq!(lat.count, 3, "all three jobs verified");
        assert!(lat.p50 > 0 && lat.p50 <= lat.p99 && lat.p99 <= lat.p999);
        assert!(snap.get("service_breaker_opens_total").is_some());
        assert!(snap.histogram("service_queue_depth_at_admission").is_some());
    }

    #[test]
    fn service_kill_and_resume_round_trip() {
        let rcfg = small_rcfg();
        let input = InputSpec::UniformRandom { seed: 50 }.generate(4 * 160 + 5);
        let mut svc = SortService::new(rcfg.clone());
        svc.submit("whole", input.clone(), SortAlgorithm::CfMerge);
        let whole = svc.drain().remove(0).result.expect("whole run");

        let mut svc2 = SortService::new(rcfg);
        svc2.submit_with_policy(
            "killed",
            input,
            SortAlgorithm::CfMerge,
            FaultPlan::none(),
            None,
            CheckpointPolicy::kill_after(0),
        );
        let killed = svc2.drain().remove(0);
        let cp = match killed.result {
            Err(SortError::Interrupted { checkpoint, .. }) => *checkpoint,
            other => panic!("expected Interrupted, got {other:?}"),
        };
        svc2.submit_resume("resumed", cp, FaultPlan::none(), None);
        let resumed = svc2.drain().remove(0).result.expect("resume succeeds");
        assert_eq!(resumed.run.output, whole.run.output);
        assert_eq!(resumed.run.simulated_seconds, whole.run.simulated_seconds);
        assert_eq!(svc2.counters().resumed, 1);
    }
}
