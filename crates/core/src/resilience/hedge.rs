//! Straggler hedging policy and counters (Dean & Barroso's hedged
//! requests, adapted to modeled GPU launches).
//!
//! After a launch's blocks complete, the robust driver compares each
//! block's injected latency-spike cycles against a percentile threshold
//! over *that launch's* completed blocks. Blocks above the threshold get
//! a priced duplicate execution (an auxiliary launch — no host overhead,
//! see `TimingModel::auxiliary_launch_time`), and the block's latency
//! contribution becomes the faster of the two attempts. Fault-free runs
//! have zero spike cycles everywhere, so no hedge ever launches and the
//! run stays bit-identical to the unhedged driver.

use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// When the robust driver hedges a straggling block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Master switch; `false` (the default) disables all hedging
    /// bookkeeping.
    pub enabled: bool,
    /// A block is a straggler when its spike cycles exceed this
    /// percentile of the launch's per-block spike cycles (exclusive —
    /// a launch whose blocks are all equally slow has no stragglers).
    pub percentile: u32,
    /// Ignore stragglers below this absolute spike size; keeps the
    /// policy from hedging noise.
    pub min_spike_cycles: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self { enabled: false, percentile: 95, min_spike_cycles: 1_000 }
    }
}

impl HedgeConfig {
    /// The default policy, switched on (p95 threshold, 1000-cycle floor).
    #[must_use]
    pub fn on() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Indices of the blocks to hedge, given each block's accumulated
    /// spike cycles. Deterministic: a pure function of the latency
    /// vector.
    #[must_use]
    pub fn stragglers(&self, spike_cycles: &[u64]) -> Vec<usize> {
        if !self.enabled || spike_cycles.is_empty() {
            return Vec::new();
        }
        let mut sorted = spike_cycles.to_vec();
        sorted.sort_unstable();
        let idx = (self.percentile.min(100) as usize * (sorted.len() - 1)) / 100;
        let threshold = sorted[idx];
        spike_cycles
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > threshold && c >= self.min_spike_cycles)
            .map(|(i, _)| i)
            .collect()
    }
}

/// What hedging did in one run (folds into the `RecoveryReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HedgeCounters {
    /// Hedged duplicates launched.
    pub launched: u64,
    /// Hedges whose duplicate finished faster than the straggler (the
    /// duplicate's result was taken).
    pub won: u64,
    /// Straggler spike cycles avoided by winning hedges.
    pub cycles_saved: u64,
    /// Modeled seconds spent executing hedged duplicates.
    pub hedge_seconds: f64,
}

impl HedgeCounters {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &HedgeCounters) {
        self.launched += other.launched;
        self.won += other.won;
        self.cycles_saved += other.cycles_saved;
        self.hedge_seconds += other.hedge_seconds;
    }
}

impl ToJson for HedgeCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("launched", Json::from(self.launched)),
            ("won", Json::from(self.won)),
            ("cycles_saved", Json::from(self.cycles_saved)),
            ("hedge_seconds", Json::from(self.hedge_seconds)),
        ])
    }
}

impl FromJson for HedgeCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            launched: v.field("launched")?,
            won: v.field("won")?,
            cycles_saved: v.field("cycles_saved")?,
            hedge_seconds: v.field("hedge_seconds")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_hedges() {
        let cfg = HedgeConfig::default();
        assert!(cfg.stragglers(&[0, 0, 1_000_000]).is_empty());
    }

    #[test]
    fn fault_free_launch_has_no_stragglers() {
        let cfg = HedgeConfig::on();
        assert!(cfg.stragglers(&[0, 0, 0, 0]).is_empty());
        assert!(cfg.stragglers(&[]).is_empty());
    }

    #[test]
    fn outlier_above_percentile_and_floor_is_hedged() {
        let cfg = HedgeConfig { enabled: true, percentile: 90, min_spike_cycles: 1_000 };
        let mut lat = vec![0u64; 15];
        lat.push(500_000);
        assert_eq!(cfg.stragglers(&lat), vec![15]);
        // Below the absolute floor: ignored even though it's the p100.
        let mut small = vec![0u64; 15];
        small.push(999);
        assert!(cfg.stragglers(&small).is_empty());
    }

    #[test]
    fn uniformly_slow_launch_is_not_hedged() {
        // Every block equally slow: threshold equals every value, and the
        // comparison is exclusive — hedging a uniformly slow launch would
        // just double the work.
        let cfg = HedgeConfig::on();
        assert!(cfg.stragglers(&[50_000, 50_000, 50_000]).is_empty());
    }

    #[test]
    fn counters_merge_and_roundtrip() {
        let mut a = HedgeCounters { launched: 2, won: 1, cycles_saved: 10, hedge_seconds: 1e-6 };
        let b = HedgeCounters { launched: 1, won: 1, cycles_saved: 5, hedge_seconds: 2e-6 };
        a.merge(&b);
        assert_eq!(a.launched, 3);
        assert_eq!(a.won, 2);
        assert_eq!(a.cycles_saved, 15);
        let back = HedgeCounters::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
    }
}
