//! Static conflict-freedom analysis of the shipping kernels.
//!
//! [`kernel_registry`] writes down, for every shared-memory phase of both
//! pipelines, the symbolic address [`Pattern`] the phase follows and the
//! [`Expectation`] we hold the prover to. [`check_registry`] runs the
//! prover ([`cfmerge_gpu_sim::check::prove`]) over the registry and
//! cross-validates every certified verdict against the bank cost model on
//! sampled concretizations. The `kernel_check` bin and the analysis test
//! suites both consume this, so a kernel edit that silently changes an
//! address schedule fails the build, not a benchmark run months later.
//!
//! The registry is *honest*: phases that are not conflict-free say so.
//! The Thrust serial merge is [`Expectation::NotCertifiable`] (its
//! addresses are comparison-driven — this is exactly the phase the
//! worst-case inputs of Section 4 attack), and the CF blocksort's
//! inter-round writeback at mid run widths costs exactly 2 transactions
//! (two coprime-stride pieces meeting in a bank; each piece alone is
//! free). See `docs/ANALYSIS.md` for the full proof chain.

use crate::sort::SortAlgorithm;
use cfmerge_gpu_sim::check::{
    cross_validate_on, prove_on, AffineForm, BankShape, Pattern, Verdict,
};
use cfmerge_gpu_sim::PhaseClass;
use cfmerge_numtheory::gcd;

/// What the prover must conclude about a phase for the registry to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Must be certified conflict-free (for all lanes, rounds, inputs).
    CertifiedFree,
    /// Must be certified to conflict with exactly this many transactions
    /// per round.
    CertifiedDegree(u32),
    /// Exact evaluation may land anywhere in `1..=N` transactions (static
    /// schedules whose cost varies with run width).
    BoundedDegree(u32),
    /// The prover must *refuse*: no schedule-level argument exists.
    NotCertifiable,
    /// The registry holds **no** pinned expectation for this device shape
    /// (it is outside the supported lattice). The only acceptable verdict
    /// is a refusal: an optimistic `ConflictFree` on a shape we have not
    /// analyzed is exactly the bug the fail-closed design exists to catch.
    Unknown,
}

impl Expectation {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Expectation::CertifiedFree => "conflict-free".into(),
            Expectation::CertifiedDegree(n) => format!("exactly {n} transactions"),
            Expectation::BoundedDegree(n) => format!("at most {n} transactions"),
            Expectation::NotCertifiable => "not certifiable".into(),
            Expectation::Unknown => "no pinned expectation — fail closed".into(),
        }
    }

    /// Does `verdict` satisfy this expectation?
    #[must_use]
    pub fn satisfied_by(&self, verdict: &Verdict) -> bool {
        match (self, verdict) {
            (Expectation::CertifiedFree, Verdict::ConflictFree(_)) => true,
            (Expectation::CertifiedDegree(n), Verdict::Conflicting { transactions, .. }) => {
                transactions == n
            }
            (Expectation::BoundedDegree(_), Verdict::ConflictFree(_)) => true,
            (Expectation::BoundedDegree(n), Verdict::Conflicting { transactions, .. }) => {
                transactions <= n
            }
            (Expectation::NotCertifiable, Verdict::NotCertifiable { .. }) => true,
            (Expectation::Unknown, Verdict::NotCertifiable { .. }) => true,
            _ => false,
        }
    }
}

/// One shared-memory phase of a shipping kernel: its symbolic address
/// schedule and the verdict we expect.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Kernel name (`blocksort` or `merge-pass`).
    pub kernel: &'static str,
    /// Phase label (includes the run width for per-round writebacks).
    pub phase: String,
    /// `"ld"` or `"st"`.
    pub access: &'static str,
    /// The profiler phase class this schedule executes under — the key
    /// the registry-completeness audit matches dynamic traffic against.
    pub class: PhaseClass,
    /// The address schedule.
    pub pattern: Pattern,
    /// The verdict this spec is held to.
    pub expected: Expectation,
}

/// The outcome of proving one [`PhaseSpec`].
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The spec that was checked.
    pub spec: PhaseSpec,
    /// What the prover concluded.
    pub verdict: Verdict,
    /// Agreement between the verdict and the bank cost model on sampled
    /// concretizations (`Ok` when they agree or no samples exist).
    pub cross_validation: Result<(), String>,
}

impl PhaseReport {
    /// `true` when the verdict satisfies the expectation and
    /// cross-validation found no disagreement.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.spec.expected.satisfied_by(&self.verdict) && self.cross_validation.is_ok()
    }

    /// One-line summary for reports.
    #[must_use]
    pub fn summary(&self) -> String {
        let status = if self.pass() { "ok " } else { "FAIL" };
        let xv = match &self.cross_validation {
            Ok(()) => String::new(),
            Err(e) => format!(" [cross-validation: {e}]"),
        };
        format!(
            "{status} {:>10} {:<28} {} — {} (expected {}){xv}",
            self.spec.kernel,
            self.spec.phase,
            self.spec.access,
            self.verdict.summary(),
            self.spec.expected.label(),
        )
    }
}

/// `CertifiedFree` for degree 1, else `CertifiedDegree(d)`.
fn degree(d: u32) -> Expectation {
    if d == 1 {
        Expectation::CertifiedFree
    } else {
        Expectation::CertifiedDegree(d)
    }
}

/// Expectation for a pure strided schedule (`lane coefficient E`) on
/// `shape`. 32-bit rows: free iff coprime, else exactly `gcd(E, w)`
/// transactions. 64-bit rows fuse word pairs: an even stride `E = 2a`
/// walks rows with stride `a`, giving exactly `gcd(a, w)` transactions; an
/// odd stride keeps addresses distinct mod `2w`, so each fused bank serves
/// at most 2 rows (the paper's coprime strides lose conflict-freedom on
/// 64-bit banks, but never by more than 2×).
fn strided_on(e: usize, shape: BankShape) -> Expectation {
    let w = shape.banks;
    if shape.word_u32s == 1 {
        degree(gcd(e as u64, w as u64) as u32)
    } else if e.is_multiple_of(2) {
        degree(gcd((e / 2) as u64, w as u64) as u32)
    } else {
        Expectation::BoundedDegree(2)
    }
}

/// Expectation for the dual gather over the reversal-only layout: the
/// round set is `{q·E + j}` over `w` consecutive `q` — the same
/// arithmetic-progression structure as a strided schedule, so the same
/// shape-parametric analysis applies.
fn gather_reversal_on(e: usize, shape: BankShape) -> Expectation {
    strided_on(e, shape)
}

/// Expectation for the ρ-permuted CF gather. 32-bit rows: certified free
/// (Corollary 18 + ρ bijectivity). 64-bit rows: for `d = 1` ρ is the
/// identity and the odd-stride bound applies (≤ 2); for `d > 1` ρ's
/// partition rotations interact with row fusion — bounded only by the
/// trivial `w`, pinned exactly by the fused exhaustive evaluation.
fn gather_cf_on(e: usize, shape: BankShape) -> Expectation {
    let w = shape.banks;
    if shape.word_u32s == 1 {
        Expectation::CertifiedFree
    } else if gcd(e as u64, w as u64) == 1 && e % 2 == 1 {
        Expectation::BoundedDegree(2)
    } else {
        Expectation::BoundedDegree(w as u32)
    }
}

/// Expectation for the CF blocksort writeback through `cf_rank_slot` at
/// run width `run_w` (established by exhaustive evaluation; see
/// `docs/ANALYSIS.md`). 32-bit rows, coprime `E`: the first writeback
/// (`run_w = E`) and every writeback at `run_w ≥ w·E` are free, mid widths
/// cost exactly 2 (an ascending stride-`E` piece and a descending
/// stride-`−E` piece meet in one bank). `d > 1` or fused 64-bit rows:
/// bounded by the trivial `w`; the exhaustive rules pin the exact value.
fn reflected_on(e: usize, run_w: usize, shape: BankShape) -> Expectation {
    let w = shape.banks;
    if shape.word_u32s != 1 || gcd(e as u64, w as u64) != 1 {
        return Expectation::BoundedDegree(w as u32);
    }
    if run_w == e || run_w >= w * e {
        Expectation::CertifiedFree
    } else {
        Expectation::CertifiedDegree(2)
    }
}

/// Expectation for the merge-pass permuting load. 32-bit rows: certified
/// free for `d = 1` (split-unit-stride), refused otherwise. 64-bit rows,
/// `d = 1`: both pieces are unit-stride, and consecutive addresses pair
/// into shared rows, so each boundary's round costs at most 2.
fn permuted_on(e: usize, shape: BankShape) -> Expectation {
    if gcd(e as u64, shape.banks as u64) != 1 {
        Expectation::NotCertifiable
    } else if shape.word_u32s == 1 {
        Expectation::CertifiedFree
    } else {
        Expectation::BoundedDegree(2)
    }
}

/// The full phase registry of one pipeline at parameters `(E, u)` on a
/// `w`-bank, 32-bit-row device — the paper's shape. Compatibility wrapper
/// over [`kernel_registry_on`].
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of `w` (the blocksort's
/// own launch precondition).
#[must_use]
pub fn kernel_registry(algo: SortAlgorithm, w: usize, e: usize, u: usize) -> Vec<PhaseSpec> {
    kernel_registry_on(algo, BankShape::word32(w), e, u)
}

/// The full phase registry of one pipeline at parameters `(E, u)` on an
/// explicit device [`BankShape`]: every shared-memory access schedule of
/// the blocksort and merge-pass kernels, in execution order, with
/// **per-shape** expectations (the gcd arithmetic that decides
/// conflict-freedom changes with the bank row width).
///
/// Shapes outside the supported lattice get [`Expectation::Unknown`] on
/// every phase: the only verdict that passes is a refusal, never an
/// optimistic carry-over of another shape's certificate.
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of `w` (the blocksort's
/// own launch precondition).
#[must_use]
pub fn kernel_registry_on(
    algo: SortAlgorithm,
    shape: BankShape,
    e: usize,
    u: usize,
) -> Vec<PhaseSpec> {
    let w = shape.banks;
    assert!(
        u.is_multiple_of(w) && u.is_power_of_two(),
        "u={u} must be a power-of-two multiple of w={w}"
    );
    let warps = u / w;
    let tile = u * e;
    // The two strided workhorses: coalesced tile traffic (lane stride 1,
    // round stride u) and rank-order register traffic (lane stride E).
    let coalesced =
        Pattern::Affine { form: AffineForm { base: 0, lane: 1, step: u as i64 }, rounds: e };
    let rank_strided =
        Pattern::Affine { form: AffineForm { base: 0, lane: e as i64, step: 1 }, rounds: e };
    let search = Pattern::DataDependent(
        "merge-path binary search: probe addresses and trip counts depend on key values \
         (predicated, divergence-exempt)",
    );

    let mut specs = vec![
        PhaseSpec {
            kernel: "blocksort",
            phase: "load-tile".into(),
            access: "st",
            class: PhaseClass::LoadTile,
            pattern: coalesced.clone(),
            // Unit lane stride: consecutive addresses are conflict-free
            // on 32-bit rows and pair into shared rows on 64-bit rows.
            expected: Expectation::CertifiedFree,
        },
        PhaseSpec {
            kernel: "blocksort",
            phase: "register-pull".into(),
            access: "ld",
            class: PhaseClass::Sort,
            pattern: rank_strided.clone(),
            expected: strided_on(e, shape),
        },
    ];

    match algo {
        SortAlgorithm::ThrustMergesort => {
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "sort-writeback".into(),
                access: "st",
                class: PhaseClass::Sort,
                pattern: rank_strided.clone(),
                expected: strided_on(e, shape),
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "merge-path-search".into(),
                access: "ld",
                class: PhaseClass::Search,
                pattern: search.clone(),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "serial-merge".into(),
                access: "ld",
                class: PhaseClass::Merge,
                pattern: Pattern::DataDependent(
                    "serial merge: each load's address depends on every prior comparison — \
                     the phase the worst-case inputs of Section 4 attack",
                ),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "merge-writeback".into(),
                access: "st",
                class: PhaseClass::Sort,
                pattern: rank_strided.clone(),
                expected: strided_on(e, shape),
            });
        }
        SortAlgorithm::CfMerge => {
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "sort-writeback(W=E)".into(),
                access: "st",
                class: PhaseClass::Sort,
                pattern: Pattern::Reflected { e, run_w: e, warps },
                expected: reflected_on(e, e, shape),
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "merge-path-search".into(),
                access: "ld",
                class: PhaseClass::Search,
                pattern: search.clone(),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "dual-gather".into(),
                access: "ld",
                class: PhaseClass::Gather,
                pattern: Pattern::GatherReversal { e },
                expected: gather_reversal_on(e, shape),
            });
            // One writeback per merge round: reflected into the next
            // round's layout, natural on the last.
            let mut run_w = e;
            while run_w < tile {
                let next_w = 2 * run_w;
                if next_w >= tile {
                    specs.push(PhaseSpec {
                        kernel: "blocksort",
                        phase: format!("final-writeback(W={run_w})"),
                        access: "st",
                        class: PhaseClass::Sort,
                        pattern: rank_strided.clone(),
                        expected: strided_on(e, shape),
                    });
                } else {
                    specs.push(PhaseSpec {
                        kernel: "blocksort",
                        phase: format!("merge-writeback(W={run_w})"),
                        access: "st",
                        class: PhaseClass::Sort,
                        pattern: Pattern::Reflected { e, run_w: next_w, warps },
                        expected: reflected_on(e, next_w, shape),
                    });
                }
                run_w = next_w;
            }
        }
    }
    specs.push(PhaseSpec {
        kernel: "blocksort",
        phase: "store-tile".into(),
        access: "ld",
        class: PhaseClass::StoreTile,
        pattern: coalesced.clone(),
        expected: Expectation::CertifiedFree,
    });

    // ---- merge pass ----
    match algo {
        SortAlgorithm::ThrustMergesort => {
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "load-tile".into(),
                access: "st",
                class: PhaseClass::LoadTile,
                pattern: coalesced.clone(),
                expected: Expectation::CertifiedFree,
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "merge-path-search".into(),
                access: "ld",
                class: PhaseClass::Search,
                pattern: search.clone(),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "serial-merge".into(),
                access: "ld",
                class: PhaseClass::Merge,
                pattern: Pattern::DataDependent(
                    "serial merge: comparison-driven loads from shared memory",
                ),
                expected: Expectation::NotCertifiable,
            });
        }
        SortAlgorithm::CfMerge => {
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "permuting-load".into(),
                access: "st",
                class: PhaseClass::LoadTile,
                pattern: Pattern::PermutedLoad { e },
                expected: permuted_on(e, shape),
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "merge-path-search".into(),
                access: "ld",
                class: PhaseClass::Search,
                pattern: search,
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "dual-gather".into(),
                access: "ld",
                class: PhaseClass::Gather,
                pattern: Pattern::GatherCf { e },
                expected: gather_cf_on(e, shape),
            });
        }
    }
    specs.push(PhaseSpec {
        kernel: "merge-pass",
        phase: "stage-store".into(),
        access: "st",
        class: PhaseClass::StoreTile,
        pattern: rank_strided,
        expected: strided_on(e, shape),
    });
    specs.push(PhaseSpec {
        kernel: "merge-pass",
        phase: "store-tile".into(),
        access: "ld",
        class: PhaseClass::StoreTile,
        pattern: coalesced,
        expected: Expectation::CertifiedFree,
    });
    if !shape.supported() {
        // Fail closed: no expectation is pinned for shapes we have not
        // analyzed, and only a refusal from the prover passes.
        for spec in &mut specs {
            spec.expected = Expectation::Unknown;
        }
    }
    specs
}

/// Prove every spec of [`kernel_registry`] (32-bit rows) and
/// cross-validate the verdicts against the bank cost model.
///
/// # Panics
/// Same conditions as [`kernel_registry`].
#[must_use]
pub fn check_registry(algo: SortAlgorithm, w: usize, e: usize, u: usize) -> Vec<PhaseReport> {
    check_registry_on(algo, BankShape::word32(w), e, u)
}

/// Prove every spec of [`kernel_registry_on`] on an explicit device shape
/// and cross-validate the verdicts against that shape's bank cost model.
///
/// # Panics
/// Same conditions as [`kernel_registry_on`].
#[must_use]
pub fn check_registry_on(
    algo: SortAlgorithm,
    shape: BankShape,
    e: usize,
    u: usize,
) -> Vec<PhaseReport> {
    let warps = u / shape.banks;
    kernel_registry_on(algo, shape, e, u)
        .into_iter()
        .map(|spec| {
            let verdict = prove_on(&spec.pattern, shape, warps);
            let cross_validation = cross_validate_on(&spec.pattern, &verdict, shape, warps);
            PhaseReport { spec, verdict, cross_validation }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_gpu_sim::check::prove;

    #[test]
    fn shipping_configs_pass_the_registry() {
        for (e, u) in [(15usize, 512usize), (17, 256)] {
            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                for report in check_registry(algo, 32, e, u) {
                    assert!(report.pass(), "{}", report.summary());
                }
            }
        }
    }

    #[test]
    fn cf_gather_phases_are_certified_free() {
        let reports = check_registry(SortAlgorithm::CfMerge, 32, 15, 512);
        let gathers: Vec<_> = reports.iter().filter(|r| r.spec.phase.contains("gather")).collect();
        assert_eq!(gathers.len(), 2, "blocksort + merge-pass gathers");
        for g in gathers {
            assert!(g.verdict.is_conflict_free(), "{}", g.summary());
        }
    }

    #[test]
    fn thrust_serial_merge_is_not_certified() {
        let reports = check_registry(SortAlgorithm::ThrustMergesort, 32, 15, 512);
        let serial: Vec<_> = reports.iter().filter(|r| r.spec.phase == "serial-merge").collect();
        assert_eq!(serial.len(), 2, "blocksort + merge-pass serial merges");
        for s in serial {
            assert!(matches!(s.verdict, Verdict::NotCertifiable { .. }), "{}", s.summary());
        }
    }

    #[test]
    fn noncoprime_e_registry_is_honest() {
        // E = 16, w = 32: the registry expects the strided phases and the
        // reversal-only gather to conflict (degree 16), the ρ gather to
        // stay free, and the permuting load to be refused — and passes.
        let reports = check_registry(SortAlgorithm::CfMerge, 32, 16, 256);
        for report in &reports {
            assert!(report.pass(), "{}", report.summary());
        }
        let by_phase = |p: &str| {
            reports
                .iter()
                .find(|r| r.spec.phase == p)
                .unwrap_or_else(|| panic!("missing phase {p}"))
        };
        assert!(matches!(
            by_phase("dual-gather").verdict,
            Verdict::Conflicting { transactions: 16, .. }
        ));
        let mp_gather = reports
            .iter()
            .find(|r| r.spec.kernel == "merge-pass" && r.spec.phase == "dual-gather")
            .expect("merge-pass gather");
        assert!(mp_gather.verdict.is_conflict_free(), "{}", mp_gather.summary());
        assert!(matches!(by_phase("permuting-load").verdict, Verdict::NotCertifiable { .. }));
    }

    #[test]
    fn expectation_matching_is_strict() {
        use Expectation::*;
        let free = prove(&Pattern::GatherCf { e: 15 }, 32);
        assert!(CertifiedFree.satisfied_by(&free));
        assert!(BoundedDegree(2).satisfied_by(&free));
        assert!(!NotCertifiable.satisfied_by(&free));
        let conf = prove(&Pattern::GatherReversal { e: 16 }, 32);
        assert!(CertifiedDegree(16).satisfied_by(&conf));
        assert!(!CertifiedDegree(8).satisfied_by(&conf));
        assert!(BoundedDegree(16).satisfied_by(&conf));
        assert!(!BoundedDegree(15).satisfied_by(&conf));
        assert!(!CertifiedFree.satisfied_by(&conf));
        assert!(!Unknown.satisfied_by(&free));
        assert!(!Unknown.satisfied_by(&conf));
        assert!(Unknown.satisfied_by(&Verdict::NotCertifiable { reason: "x".into() }));
    }

    #[test]
    fn shipping_configs_pass_the_registry_on_64bit_banks() {
        let shape = BankShape::word64(32);
        for (e, u) in [(15usize, 512usize), (17, 256), (16, 256)] {
            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                for report in check_registry_on(algo, shape, e, u) {
                    assert!(report.pass(), "E={e} u={u}: {}", report.summary());
                }
            }
        }
    }

    #[test]
    fn fused_banks_change_the_verdict_qualitatively() {
        // E=15, w=32 is the paper's coprime sweet spot: every certified
        // phase conflict-free on 32-bit rows. On 64-bit rows the strided
        // phases lose conflict-freedom (degree 2) — CF-Merge's immunity
        // does not transfer unexamined across bank widths.
        let w32 = check_registry_on(SortAlgorithm::CfMerge, BankShape::word32(32), 15, 512);
        let w64 = check_registry_on(SortAlgorithm::CfMerge, BankShape::word64(32), 15, 512);
        let free = |rs: &[PhaseReport]| rs.iter().filter(|r| r.verdict.is_conflict_free()).count();
        assert!(free(&w64) < free(&w32), "{} !< {}", free(&w64), free(&w32));
        let pull64 = w64.iter().find(|r| r.spec.phase == "register-pull").expect("register-pull");
        assert!(
            matches!(pull64.verdict, Verdict::Conflicting { transactions, .. } if transactions == 2),
            "{}",
            pull64.summary()
        );
    }

    #[test]
    fn unsupported_shape_fails_closed_everywhere() {
        let weird = BankShape { banks: 32, word_u32s: 4 };
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            let reports = check_registry_on(algo, weird, 15, 512);
            assert!(!reports.is_empty());
            for report in reports {
                assert_eq!(report.spec.expected, Expectation::Unknown);
                assert!(
                    matches!(report.verdict, Verdict::NotCertifiable { .. }),
                    "{}",
                    report.summary()
                );
                assert!(report.pass(), "{}", report.summary());
            }
        }
    }

    #[test]
    fn registry_covers_every_dynamic_phase_class() {
        // Every phase class the profiled pipelines drive shared traffic
        // through must appear in the registry (the static half of the
        // completeness audit; the dynamic half lives in `cert.rs`).
        use cfmerge_gpu_sim::PhaseClass;
        for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
            let classes: Vec<PhaseClass> =
                kernel_registry(algo, 32, 15, 512).iter().map(|s| s.class).collect();
            for class in
                [PhaseClass::LoadTile, PhaseClass::Search, PhaseClass::Sort, PhaseClass::StoreTile]
            {
                assert!(classes.contains(&class), "{algo:?} registry missing {class:?}");
            }
        }
    }
}
