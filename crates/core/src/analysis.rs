//! Static conflict-freedom analysis of the shipping kernels.
//!
//! [`kernel_registry`] writes down, for every shared-memory phase of both
//! pipelines, the symbolic address [`Pattern`] the phase follows and the
//! [`Expectation`] we hold the prover to. [`check_registry`] runs the
//! prover ([`cfmerge_gpu_sim::check::prove`]) over the registry and
//! cross-validates every certified verdict against the bank cost model on
//! sampled concretizations. The `kernel_check` bin and the analysis test
//! suites both consume this, so a kernel edit that silently changes an
//! address schedule fails the build, not a benchmark run months later.
//!
//! The registry is *honest*: phases that are not conflict-free say so.
//! The Thrust serial merge is [`Expectation::NotCertifiable`] (its
//! addresses are comparison-driven — this is exactly the phase the
//! worst-case inputs of Section 4 attack), and the CF blocksort's
//! inter-round writeback at mid run widths costs exactly 2 transactions
//! (two coprime-stride pieces meeting in a bank; each piece alone is
//! free). See `docs/ANALYSIS.md` for the full proof chain.

use crate::sort::SortAlgorithm;
use cfmerge_gpu_sim::check::{cross_validate, prove, AffineForm, Pattern, Verdict};
use cfmerge_numtheory::gcd;

/// What the prover must conclude about a phase for the registry to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Must be certified conflict-free (for all lanes, rounds, inputs).
    CertifiedFree,
    /// Must be certified to conflict with exactly this many transactions
    /// per round.
    CertifiedDegree(u32),
    /// Exact evaluation may land anywhere in `1..=N` transactions (static
    /// schedules whose cost varies with run width).
    BoundedDegree(u32),
    /// The prover must *refuse*: no schedule-level argument exists.
    NotCertifiable,
}

impl Expectation {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Expectation::CertifiedFree => "conflict-free".into(),
            Expectation::CertifiedDegree(n) => format!("exactly {n} transactions"),
            Expectation::BoundedDegree(n) => format!("at most {n} transactions"),
            Expectation::NotCertifiable => "not certifiable".into(),
        }
    }

    /// Does `verdict` satisfy this expectation?
    #[must_use]
    pub fn satisfied_by(&self, verdict: &Verdict) -> bool {
        match (self, verdict) {
            (Expectation::CertifiedFree, Verdict::ConflictFree(_)) => true,
            (Expectation::CertifiedDegree(n), Verdict::Conflicting { transactions, .. }) => {
                transactions == n
            }
            (Expectation::BoundedDegree(_), Verdict::ConflictFree(_)) => true,
            (Expectation::BoundedDegree(n), Verdict::Conflicting { transactions, .. }) => {
                transactions <= n
            }
            (Expectation::NotCertifiable, Verdict::NotCertifiable { .. }) => true,
            _ => false,
        }
    }
}

/// One shared-memory phase of a shipping kernel: its symbolic address
/// schedule and the verdict we expect.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Kernel name (`blocksort` or `merge-pass`).
    pub kernel: &'static str,
    /// Phase label (includes the run width for per-round writebacks).
    pub phase: String,
    /// `"ld"` or `"st"`.
    pub access: &'static str,
    /// The address schedule.
    pub pattern: Pattern,
    /// The verdict this spec is held to.
    pub expected: Expectation,
}

/// The outcome of proving one [`PhaseSpec`].
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// The spec that was checked.
    pub spec: PhaseSpec,
    /// What the prover concluded.
    pub verdict: Verdict,
    /// Agreement between the verdict and the bank cost model on sampled
    /// concretizations (`Ok` when they agree or no samples exist).
    pub cross_validation: Result<(), String>,
}

impl PhaseReport {
    /// `true` when the verdict satisfies the expectation and
    /// cross-validation found no disagreement.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.spec.expected.satisfied_by(&self.verdict) && self.cross_validation.is_ok()
    }

    /// One-line summary for reports.
    #[must_use]
    pub fn summary(&self) -> String {
        let status = if self.pass() { "ok " } else { "FAIL" };
        let xv = match &self.cross_validation {
            Ok(()) => String::new(),
            Err(e) => format!(" [cross-validation: {e}]"),
        };
        format!(
            "{status} {:>10} {:<28} {} — {} (expected {}){xv}",
            self.spec.kernel,
            self.spec.phase,
            self.spec.access,
            self.verdict.summary(),
            self.spec.expected.label(),
        )
    }
}

/// Expectation for a pure strided schedule (`lane coefficient E` on `w`
/// banks): free iff coprime, else exactly `gcd(E, w)` transactions.
fn strided(e: usize, w: usize) -> Expectation {
    let d = gcd(e as u64, w as u64) as u32;
    if d == 1 {
        Expectation::CertifiedFree
    } else {
        Expectation::CertifiedDegree(d)
    }
}

/// Expectation for the CF blocksort writeback through `cf_rank_slot` at
/// run width `run_w` (established by exhaustive evaluation; see
/// `docs/ANALYSIS.md`): for coprime `E` the first writeback (`run_w = E`)
/// and every writeback at `run_w ≥ w·E` are free, while mid widths cost
/// exactly 2 transactions (an ascending stride-`E` piece and a descending
/// stride-`−E` piece of the reflection meet in one bank; each piece alone
/// is free). For `d > 1` the pieces conflict internally too — bounded by
/// the trivial `w`.
fn reflected_expectation(e: usize, run_w: usize, w: usize) -> Expectation {
    if gcd(e as u64, w as u64) != 1 {
        return Expectation::BoundedDegree(w as u32);
    }
    if run_w == e || run_w >= w * e {
        Expectation::CertifiedFree
    } else {
        Expectation::CertifiedDegree(2)
    }
}

/// The full phase registry of one pipeline at parameters `(E, u)` on a
/// `w`-bank device: every shared-memory access schedule of the blocksort
/// and merge-pass kernels, in execution order.
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of `w` (the blocksort's
/// own launch precondition).
#[must_use]
pub fn kernel_registry(algo: SortAlgorithm, w: usize, e: usize, u: usize) -> Vec<PhaseSpec> {
    assert!(
        u.is_multiple_of(w) && u.is_power_of_two(),
        "u={u} must be a power-of-two multiple of w={w}"
    );
    let warps = u / w;
    let tile = u * e;
    let d = gcd(e as u64, w as u64);
    // The two strided workhorses: coalesced tile traffic (lane stride 1,
    // round stride u) and rank-order register traffic (lane stride E).
    let coalesced =
        Pattern::Affine { form: AffineForm { base: 0, lane: 1, step: u as i64 }, rounds: e };
    let rank_strided =
        Pattern::Affine { form: AffineForm { base: 0, lane: e as i64, step: 1 }, rounds: e };
    let search = Pattern::DataDependent(
        "merge-path binary search: probe addresses and trip counts depend on key values \
         (predicated, divergence-exempt)",
    );

    let mut specs = vec![
        PhaseSpec {
            kernel: "blocksort",
            phase: "load-tile".into(),
            access: "st",
            pattern: coalesced.clone(),
            expected: Expectation::CertifiedFree,
        },
        PhaseSpec {
            kernel: "blocksort",
            phase: "register-pull".into(),
            access: "ld",
            pattern: rank_strided.clone(),
            expected: strided(e, w),
        },
    ];

    match algo {
        SortAlgorithm::ThrustMergesort => {
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "sort-writeback".into(),
                access: "st",
                pattern: rank_strided.clone(),
                expected: strided(e, w),
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "merge-path-search".into(),
                access: "ld",
                pattern: search.clone(),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "serial-merge".into(),
                access: "ld",
                pattern: Pattern::DataDependent(
                    "serial merge: each load's address depends on every prior comparison — \
                     the phase the worst-case inputs of Section 4 attack",
                ),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "merge-writeback".into(),
                access: "st",
                pattern: rank_strided.clone(),
                expected: strided(e, w),
            });
        }
        SortAlgorithm::CfMerge => {
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "sort-writeback(W=E)".into(),
                access: "st",
                pattern: Pattern::Reflected { e, run_w: e, warps },
                expected: reflected_expectation(e, e, w),
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "merge-path-search".into(),
                access: "ld",
                pattern: search.clone(),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "blocksort",
                phase: "dual-gather".into(),
                access: "ld",
                pattern: Pattern::GatherReversal { e },
                expected: if d == 1 {
                    Expectation::CertifiedFree
                } else {
                    Expectation::CertifiedDegree(d as u32)
                },
            });
            // One writeback per merge round: reflected into the next
            // round's layout, natural on the last.
            let mut run_w = e;
            while run_w < tile {
                let next_w = 2 * run_w;
                if next_w >= tile {
                    specs.push(PhaseSpec {
                        kernel: "blocksort",
                        phase: format!("final-writeback(W={run_w})"),
                        access: "st",
                        pattern: rank_strided.clone(),
                        expected: strided(e, w),
                    });
                } else {
                    specs.push(PhaseSpec {
                        kernel: "blocksort",
                        phase: format!("merge-writeback(W={run_w})"),
                        access: "st",
                        pattern: Pattern::Reflected { e, run_w: next_w, warps },
                        expected: reflected_expectation(e, next_w, w),
                    });
                }
                run_w = next_w;
            }
        }
    }
    specs.push(PhaseSpec {
        kernel: "blocksort",
        phase: "store-tile".into(),
        access: "ld",
        pattern: coalesced.clone(),
        expected: Expectation::CertifiedFree,
    });

    // ---- merge pass ----
    match algo {
        SortAlgorithm::ThrustMergesort => {
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "load-tile".into(),
                access: "st",
                pattern: coalesced.clone(),
                expected: Expectation::CertifiedFree,
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "merge-path-search".into(),
                access: "ld",
                pattern: search.clone(),
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "serial-merge".into(),
                access: "ld",
                pattern: Pattern::DataDependent(
                    "serial merge: comparison-driven loads from shared memory",
                ),
                expected: Expectation::NotCertifiable,
            });
        }
        SortAlgorithm::CfMerge => {
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "permuting-load".into(),
                access: "st",
                pattern: Pattern::PermutedLoad { e },
                expected: if d == 1 {
                    Expectation::CertifiedFree
                } else {
                    Expectation::NotCertifiable
                },
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "merge-path-search".into(),
                access: "ld",
                pattern: search,
                expected: Expectation::NotCertifiable,
            });
            specs.push(PhaseSpec {
                kernel: "merge-pass",
                phase: "dual-gather".into(),
                access: "ld",
                pattern: Pattern::GatherCf { e },
                expected: Expectation::CertifiedFree,
            });
        }
    }
    specs.push(PhaseSpec {
        kernel: "merge-pass",
        phase: "stage-store".into(),
        access: "st",
        pattern: rank_strided,
        expected: strided(e, w),
    });
    specs.push(PhaseSpec {
        kernel: "merge-pass",
        phase: "store-tile".into(),
        access: "ld",
        pattern: coalesced,
        expected: Expectation::CertifiedFree,
    });
    specs
}

/// Prove every spec of [`kernel_registry`] and cross-validate the
/// verdicts against the bank cost model.
///
/// # Panics
/// Same conditions as [`kernel_registry`].
#[must_use]
pub fn check_registry(algo: SortAlgorithm, w: usize, e: usize, u: usize) -> Vec<PhaseReport> {
    let warps = u / w;
    kernel_registry(algo, w, e, u)
        .into_iter()
        .map(|spec| {
            let verdict = prove(&spec.pattern, w);
            let cross_validation = cross_validate(&spec.pattern, &verdict, w, warps);
            PhaseReport { spec, verdict, cross_validation }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipping_configs_pass_the_registry() {
        for (e, u) in [(15usize, 512usize), (17, 256)] {
            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                for report in check_registry(algo, 32, e, u) {
                    assert!(report.pass(), "{}", report.summary());
                }
            }
        }
    }

    #[test]
    fn cf_gather_phases_are_certified_free() {
        let reports = check_registry(SortAlgorithm::CfMerge, 32, 15, 512);
        let gathers: Vec<_> = reports.iter().filter(|r| r.spec.phase.contains("gather")).collect();
        assert_eq!(gathers.len(), 2, "blocksort + merge-pass gathers");
        for g in gathers {
            assert!(g.verdict.is_conflict_free(), "{}", g.summary());
        }
    }

    #[test]
    fn thrust_serial_merge_is_not_certified() {
        let reports = check_registry(SortAlgorithm::ThrustMergesort, 32, 15, 512);
        let serial: Vec<_> = reports.iter().filter(|r| r.spec.phase == "serial-merge").collect();
        assert_eq!(serial.len(), 2, "blocksort + merge-pass serial merges");
        for s in serial {
            assert!(matches!(s.verdict, Verdict::NotCertifiable { .. }), "{}", s.summary());
        }
    }

    #[test]
    fn noncoprime_e_registry_is_honest() {
        // E = 16, w = 32: the registry expects the strided phases and the
        // reversal-only gather to conflict (degree 16), the ρ gather to
        // stay free, and the permuting load to be refused — and passes.
        let reports = check_registry(SortAlgorithm::CfMerge, 32, 16, 256);
        for report in &reports {
            assert!(report.pass(), "{}", report.summary());
        }
        let by_phase = |p: &str| {
            reports
                .iter()
                .find(|r| r.spec.phase == p)
                .unwrap_or_else(|| panic!("missing phase {p}"))
        };
        assert!(matches!(
            by_phase("dual-gather").verdict,
            Verdict::Conflicting { transactions: 16, .. }
        ));
        let mp_gather = reports
            .iter()
            .find(|r| r.spec.kernel == "merge-pass" && r.spec.phase == "dual-gather")
            .expect("merge-pass gather");
        assert!(mp_gather.verdict.is_conflict_free(), "{}", mp_gather.summary());
        assert!(matches!(by_phase("permuting-load").verdict, Verdict::NotCertifiable { .. }));
    }

    #[test]
    fn expectation_matching_is_strict() {
        use Expectation::*;
        let free = prove(&Pattern::GatherCf { e: 15 }, 32);
        assert!(CertifiedFree.satisfied_by(&free));
        assert!(BoundedDegree(2).satisfied_by(&free));
        assert!(!NotCertifiable.satisfied_by(&free));
        let conf = prove(&Pattern::GatherReversal { e: 16 }, 32);
        assert!(CertifiedDegree(16).satisfied_by(&conf));
        assert!(!CertifiedDegree(8).satisfied_by(&conf));
        assert!(BoundedDegree(16).satisfied_by(&conf));
        assert!(!BoundedDegree(15).satisfied_by(&conf));
        assert!(!CertifiedFree.satisfied_by(&conf));
    }
}
