//! Workload generators for the evaluation.
//!
//! The paper evaluates on uniform random inputs and on the constructed
//! worst-case inputs of Section 4; we add a few standard auxiliary
//! distributions (sorted, reversed, few-distinct, nearly-sorted) used by
//! the extended benchmarks and property tests.

use crate::params::SortParams;
use crate::worst_case::WorstCaseBuilder;
use cfmerge_json::{FromJson, Json, JsonError, ToJson};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A reproducible input distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSpec {
    /// Uniform random 32-bit keys.
    UniformRandom {
        /// RNG seed.
        seed: u64,
    },
    /// A uniformly random *permutation* of `0..n` (distinct keys).
    RandomPermutation {
        /// RNG seed.
        seed: u64,
    },
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Keys drawn from a small alphabet (heavy duplicates).
    FewDistinct {
        /// RNG seed.
        seed: u64,
        /// Number of distinct values.
        distinct: u32,
    },
    /// Sorted, then `swaps` random transpositions.
    NearlySorted {
        /// RNG seed.
        seed: u64,
        /// Number of random transpositions applied.
        swaps: usize,
    },
    /// The Section 4 worst-case construction for the given parameters and
    /// warp width (maximizes Thrust-baseline bank conflicts in every
    /// merge pass).
    WorstCase {
        /// Warp width the construction targets.
        w: usize,
        /// Elements per thread `E`.
        e: usize,
        /// Threads per block `u`.
        u: usize,
    },
}

impl InputSpec {
    /// The worst-case spec for a parameter set at `w = 32`.
    #[must_use]
    pub fn worst_case(params: SortParams) -> Self {
        InputSpec::WorstCase { w: 32, e: params.e, u: params.u }
    }

    /// Generate `n` keys.
    #[must_use]
    pub fn generate(&self, n: usize) -> Vec<u32> {
        match *self {
            InputSpec::UniformRandom { seed } => {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                (0..n).map(|_| rng.gen()).collect()
            }
            InputSpec::RandomPermutation { seed } => {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let mut v: Vec<u32> = (0..n as u32).collect();
                v.shuffle(&mut rng);
                v
            }
            InputSpec::Sorted => (0..n as u32).collect(),
            InputSpec::Reversed => (0..n as u32).rev().collect(),
            InputSpec::FewDistinct { seed, distinct } => {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let d = distinct.max(1);
                (0..n).map(|_| rng.gen_range(0..d)).collect()
            }
            InputSpec::NearlySorted { seed, swaps } => {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let mut v: Vec<u32> = (0..n as u32).collect();
                for _ in 0..swaps {
                    if n >= 2 {
                        let i = rng.gen_range(0..n);
                        let j = rng.gen_range(0..n);
                        v.swap(i, j);
                    }
                }
                v
            }
            InputSpec::WorstCase { w, e, u } => WorstCaseBuilder::new(w, e, u).build(n),
        }
    }

    /// Short label for report tables.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            InputSpec::UniformRandom { .. } => "random".into(),
            InputSpec::RandomPermutation { .. } => "random-perm".into(),
            InputSpec::Sorted => "sorted".into(),
            InputSpec::Reversed => "reversed".into(),
            InputSpec::FewDistinct { distinct, .. } => format!("few-distinct({distinct})"),
            InputSpec::NearlySorted { swaps, .. } => format!("nearly-sorted({swaps})"),
            InputSpec::WorstCase { e, .. } => format!("worst-case(E={e})"),
        }
    }
}

impl ToJson for InputSpec {
    /// Externally tagged: `{"kind": "...", ...parameters}`.
    fn to_json(&self) -> Json {
        match *self {
            InputSpec::UniformRandom { seed } => {
                Json::obj([("kind", Json::from("uniform-random")), ("seed", Json::from(seed))])
            }
            InputSpec::RandomPermutation { seed } => {
                Json::obj([("kind", Json::from("random-permutation")), ("seed", Json::from(seed))])
            }
            InputSpec::Sorted => Json::obj([("kind", Json::from("sorted"))]),
            InputSpec::Reversed => Json::obj([("kind", Json::from("reversed"))]),
            InputSpec::FewDistinct { seed, distinct } => Json::obj([
                ("kind", Json::from("few-distinct")),
                ("seed", Json::from(seed)),
                ("distinct", Json::from(distinct)),
            ]),
            InputSpec::NearlySorted { seed, swaps } => Json::obj([
                ("kind", Json::from("nearly-sorted")),
                ("seed", Json::from(seed)),
                ("swaps", Json::from(swaps)),
            ]),
            InputSpec::WorstCase { w, e, u } => Json::obj([
                ("kind", Json::from("worst-case")),
                ("w", Json::from(w)),
                ("e", Json::from(e)),
                ("u", Json::from(u)),
            ]),
        }
    }
}

impl FromJson for InputSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind: String = v.field("kind")?;
        match kind.as_str() {
            "uniform-random" => Ok(InputSpec::UniformRandom { seed: v.field("seed")? }),
            "random-permutation" => Ok(InputSpec::RandomPermutation { seed: v.field("seed")? }),
            "sorted" => Ok(InputSpec::Sorted),
            "reversed" => Ok(InputSpec::Reversed),
            "few-distinct" => Ok(InputSpec::FewDistinct {
                seed: v.field("seed")?,
                distinct: v.field("distinct")?,
            }),
            "nearly-sorted" => {
                Ok(InputSpec::NearlySorted { seed: v.field("seed")?, swaps: v.field("swaps")? })
            }
            "worst-case" => {
                Ok(InputSpec::WorstCase { w: v.field("w")?, e: v.field("e")?, u: v.field("u")? })
            }
            other => Err(JsonError::new(format!("unknown input kind {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_length() {
        let n = 1000;
        for spec in [
            InputSpec::UniformRandom { seed: 1 },
            InputSpec::RandomPermutation { seed: 1 },
            InputSpec::Sorted,
            InputSpec::Reversed,
            InputSpec::FewDistinct { seed: 1, distinct: 4 },
            InputSpec::NearlySorted { seed: 1, swaps: 20 },
        ] {
            assert_eq!(spec.generate(n).len(), n, "{}", spec.label());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = InputSpec::UniformRandom { seed: 7 }.generate(100);
        let b = InputSpec::UniformRandom { seed: 7 }.generate(100);
        assert_eq!(a, b);
        let c = InputSpec::UniformRandom { seed: 8 }.generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let v = InputSpec::RandomPermutation { seed: 3 }.generate(500);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn few_distinct_respects_alphabet() {
        let v = InputSpec::FewDistinct { seed: 5, distinct: 3 }.generate(300);
        assert!(v.iter().all(|&x| x < 3));
    }

    #[test]
    fn sorted_and_reversed_shapes() {
        assert!(InputSpec::Sorted.generate(50).is_sorted());
        let r = InputSpec::Reversed.generate(50);
        assert!(r.windows(2).all(|p| p[0] >= p[1]));
    }
}
