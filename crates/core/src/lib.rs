//! # cfmerge-core — CF-Merge: bank-conflict-free GPU mergesort
//!
//! The primary contributions of *Eliminating Bank Conflicts in GPU
//! Mergesort* (Berney & Sitchinava, SPAA 2025), implemented against the
//! `cfmerge-gpu-sim` simulator:
//!
//! * [`gather`] — the **load-balanced dual subsequence gather**
//!   (Section 3): reads each thread's `(Aᵢ, Bᵢ)` pair from shared memory
//!   into registers in `E` rounds with *zero* bank conflicts, for any
//!   `d = gcd(w, E)`, plus the inverse scatter (footnote 5).
//! * [`sort`] — two complete mergesort pipelines on the simulator: the
//!   Thrust-style baseline (merge path + per-thread serial merge in shared
//!   memory) and **CF-Merge** (permuted tile layout + gather + register
//!   merge).
//! * [`worst_case`] — the generalized worst-case input construction of
//!   Section 4 (arbitrary `w`, `1 < E ≤ w`, any `d = gcd(w, E)`), with
//!   Theorem 8's closed-form conflict counts.
//! * [`analysis`] — the static kernel registry: the symbolic address
//!   schedule of every shared-memory phase, held to the conflict-freedom
//!   prover's verdicts (see `docs/ANALYSIS.md`).
//! * [`inputs`] — workload generators for the evaluation.
//! * [`params`] — software parameters `(E, u)` incl. the paper's presets.
//! * [`metrics`] — throughput/speedup reporting helpers.
//! * [`telemetry`] — the deterministic metrics subsystem: counters,
//!   gauges, and log-bucketed latency histograms over modeled time,
//!   with bit-stable snapshots and Prometheus export (see
//!   `docs/TELEMETRY.md`).
//! * [`verify`] / [`recovery`] — output verification (sortedness +
//!   multiset checksums), block-granular re-execution under injected
//!   faults, graceful degradation, and the batch [`recovery::SortService`]
//!   (see `docs/ROBUSTNESS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cert;
pub mod gather;
pub mod inputs;
pub mod metrics;
pub mod params;
pub mod recovery;
pub mod resilience;
pub mod sort;
pub mod telemetry;
pub mod tuning;
pub mod verify;
pub mod worst_case;
