//! Worst-case input construction (Section 4), generalized to arbitrary
//! `d = gcd(w, E)`.
//!
//! The Thrust baseline's per-thread serial merge scans `Aᵢ` and `Bᵢ`
//! sequentially in shared memory. A careful input permutation can force
//! many threads of a warp into sequential scans whose start addresses are
//! congruent modulo `w` — every scan step then hits the same bank and the
//! warp serializes. Section 4 constructs such inputs for *any* `w` and
//! `1 < E ≤ w` (the prior work [8] required `w` a power of two, coprime
//! `E`, and `w/2 < E < w`):
//!
//! * [`tuples`] builds the per-warp consumption-tuple sequence `T` — one
//!   `(aᵢ, bᵢ)` per thread, most of them full scans `(E, 0)`/`(0, E)`,
//!   spaced by the sequence `S` so that scan starts align in the bottom
//!   `E` banks.
//! * [`theorem8`] gives the closed-form conflict count those tuples
//!   produce.
//! * [`builder`] realizes the tuples as actual sortable inputs: a single
//!   merge pair for unit experiments, and — via recursive *unmerging*
//!   down the merge tree — a full input permutation that attacks **every**
//!   merge pass of the sort.

pub mod builder;
pub mod theorem8;
pub mod tuples;

pub use builder::{lockstep_baseline_conflicts, WorstCaseBuilder};
pub use theorem8::{predicted_subproblem_conflicts, predicted_warp_conflicts};
pub use tuples::{sequence_s, sequence_t, warp_tuples, Tuple};
