//! Realizing worst-case tuples as sortable inputs.
//!
//! Any assignment of output ranks to the two input lists is realizable:
//! with distinct keys, taking `A` = the values at A-assigned ranks (in
//! order) and `B` = the rest makes the stable merge consume ranks exactly
//! per the assignment. So the builder works purely on **rank → side**
//! assignments:
//!
//! * [`assign_sides`] lays the warp tuple sequences of
//!   [`super::tuples::warp_tuples`] over the output ranks of one merge,
//!   alternating warp orientation so both runs are consumed equally.
//! * [`WorstCaseBuilder::merge_pair`] produces one `(A, B)` pair — the
//!   unit experiment validated against Theorem 8.
//! * [`WorstCaseBuilder::build`] *unmerges* recursively down the whole
//!   merge tree of the sort (global passes and the qualifying block-sort
//!   rounds), producing an input permutation that attacks every merge
//!   pass, like the full-sort inputs of the paper's Section 5.

use super::tuples::WcParams;

/// Rank-to-side assignment for one merge producing `out_len` outputs:
/// `true` = the rank comes from `A` (the left run).
///
/// Requires `out_len` to be an even number of subproblems
/// (`out_len = 2k·wE/d`); the caller falls back to an interleaved
/// assignment otherwise (see [`WorstCaseBuilder::build`]).
///
/// # Panics
/// Panics if `out_len` is not an even multiple of the subproblem size.
#[must_use]
pub fn assign_sides(p: &WcParams, out_len: usize) -> Vec<bool> {
    let sub = p.w * p.e / p.d;
    assert!(
        out_len.is_multiple_of(2 * sub),
        "out_len={out_len} must be an even multiple of the subproblem size {sub}"
    );
    let t = super::tuples::sequence_t(p);
    let mut sides = Vec::with_capacity(out_len);
    // Work at subproblem granularity: global subproblem g belongs to warp
    // g/d with local index g%d; orientation alternates per local index
    // (Section 4's symmetric case) and flips per warp (balancing
    // consecutive warps) — exactly `warp_tuples(p, warp%2==1)` laid flat.
    let total_subs = out_len / sub;
    for g in 0..total_subs {
        let warp = g / p.d;
        let local = g % p.d;
        let swap = (local % 2 == 1) ^ (warp % 2 == 1);
        for &(a, b) in &t {
            let (a, b) = if swap { (b, a) } else { (a, b) };
            sides.extend(std::iter::repeat_n(true, a));
            sides.extend(std::iter::repeat_n(false, b));
        }
    }
    debug_assert_eq!(sides.len(), out_len);
    sides
}

/// Balanced fallback assignment for merges too small for the tuple
/// construction: alternate ranks A, B, A, B (perfectly interleaved runs).
#[must_use]
pub fn interleaved_sides(out_len: usize) -> Vec<bool> {
    (0..out_len).map(|r| r % 2 == 0).collect()
}

/// Builder for worst-case inputs targeting a Thrust-style mergesort with
/// warp width `w`, `E` elements per thread, and `u` threads per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstCaseBuilder {
    /// Warp width the construction targets.
    pub w: usize,
    /// Elements per thread.
    pub e: usize,
    /// Threads per block (tile = `u·E`).
    pub u: usize,
}

impl WorstCaseBuilder {
    /// New builder.
    ///
    /// # Panics
    /// Panics unless `1 < E ≤ w` and `w | u`.
    #[must_use]
    pub fn new(w: usize, e: usize, u: usize) -> Self {
        let _ = WcParams::new(w, e); // validates the E range
        assert!(u > 0 && u.is_multiple_of(w), "u={u} must be a positive multiple of w={w}");
        Self { w, e, u }
    }

    fn params(&self) -> WcParams {
        WcParams::new(self.w, self.e)
    }

    /// One worst-case merge pair: two sorted lists whose merge realizes
    /// the tuple pattern over `warps` warp-windows. Keys are
    /// `0..warps·wE`. Returns `(a, b)`.
    ///
    /// # Panics
    /// Panics if `warps` is 0 or odd (balance needs warp pairs) unless
    /// `warps == 1` with `d` even — for the unit experiments just use an
    /// even count.
    #[must_use]
    pub fn merge_pair(&self, warps: usize) -> (Vec<u32>, Vec<u32>) {
        let p = self.params();
        let out_len = warps * self.w * self.e;
        let sides = assign_sides(&p, out_len);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (rank, &is_a) in sides.iter().enumerate() {
            if is_a {
                a.push(rank as u32);
            } else {
                b.push(rank as u32);
            }
        }
        (a, b)
    }

    /// Whether a merge with `out_len` outputs qualifies for the tuple
    /// construction (an even number of subproblems).
    #[must_use]
    pub fn qualifies(&self, out_len: usize) -> bool {
        let p = self.params();
        out_len.is_multiple_of(2 * p.w * p.e / p.d)
    }

    /// Build a full worst-case input permutation of `0..n`.
    ///
    /// Recursively unmerges from the final pass down: every merge in the
    /// sort's merge tree (global passes and block-sort rounds large
    /// enough for the construction) consumes per the worst-case tuples;
    /// smaller block-sort rounds get perfectly interleaved runs.
    ///
    /// # Panics
    /// Panics unless `n` is `tile·2^k` for some `k ≥ 0` (the shape of
    /// every size in the paper's sweep) or `n < tile` and a multiple of
    /// `E`.
    #[must_use]
    pub fn build(&self, n: usize) -> Vec<u32> {
        let tile = self.u * self.e;
        assert!(
            self.u.is_power_of_two(),
            "full-input construction needs a power-of-two u (got {}) so the merge tree \
             splits evenly; use merge_pair() for other shapes",
            self.u
        );
        if n >= tile {
            let runs = n / tile;
            assert!(
                n.is_multiple_of(tile) && runs.is_power_of_two(),
                "worst-case build needs n = uE·2^k, got n={n} (tile {tile})"
            );
        } else {
            assert!(
                n.is_multiple_of(self.e) && (n / self.e).is_power_of_two(),
                "worst-case build needs n = E·2^k below one tile, got n={n}"
            );
        }
        let mut input = vec![0u32; n];
        // The run of the whole array is the sorted values 0..n.
        let values: Vec<u32> = (0..n as u32).collect();
        self.unmerge(&values, 0, &mut input);
        input
    }

    /// Recursively split `values` (the sorted content of the run at input
    /// positions `[base, base + len)`) into its two child runs and
    /// recurse; below one per-thread run (`E` elements), write out.
    fn unmerge(&self, values: &[u32], base: usize, input: &mut [u32]) {
        let len = values.len();
        if len <= self.e {
            // Leaf: one thread's pre-sorted run; any within-leaf order
            // works (the per-thread network sorts it) — reversed keeps
            // the block sort honest.
            for (i, &v) in values.iter().rev().enumerate() {
                input[base + i] = v;
            }
            return;
        }
        let half = len / 2;
        let sides = if self.qualifies(len) {
            assign_sides(&self.params(), len)
        } else {
            interleaved_sides(len)
        };
        let mut left = Vec::with_capacity(half);
        let mut right = Vec::with_capacity(len - half);
        for (rank, &is_a) in sides.iter().enumerate() {
            if is_a {
                left.push(values[rank]);
            } else {
                right.push(values[rank]);
            }
        }
        debug_assert_eq!(left.len(), half, "assignment must split runs evenly (len={len})");
        self.unmerge(&left, base, input);
        self.unmerge(&right, base + half, input);
    }
}

/// DMM-level lock-step measurement of the baseline serial merge on a
/// constructed worst-case pair: step `s` of every thread touches the
/// address of the element it consumes (`A` at its A-offset, `B` at
/// `|A| + B-offset` — the natural layout). Returns total bank conflicts
/// across `warps` warps; divide by `warps` to compare against
/// [`super::theorem8::predicted_warp_conflicts`].
///
/// This is the measurement behind the `theorem8` experiment binary and
/// the validation tests.
#[must_use]
pub fn lockstep_baseline_conflicts(w: usize, e: usize, warps: usize) -> u64 {
    use cfmerge_gpu_sim::banks::BankModel;
    use cfmerge_mergepath::serial::{serial_merge_traced, Took};
    let b = WorstCaseBuilder::new(w, e, w);
    let (av, bv) = b.merge_pair(warps);
    let (_, trace) = serial_merge_traced(&av, &bv);
    let banks = BankModel::new(w as u32);
    let threads = warps * w;
    let mut a_off: Vec<usize> = Vec::with_capacity(threads);
    let mut b_off: Vec<usize> = Vec::with_capacity(threads);
    let (mut ca, mut cb) = (0usize, 0usize);
    for t in 0..threads {
        a_off.push(ca);
        b_off.push(cb);
        let seg = &trace[t * e..(t + 1) * e];
        ca += seg.iter().filter(|&&x| x == Took::A).count();
        cb += seg.iter().filter(|&&x| x == Took::B).count();
    }
    let b_base = av.len();
    let mut conflicts = 0u64;
    for v in 0..warps {
        let mut a_pos = a_off[v * w..v * w + w].to_vec();
        let mut b_pos = b_off[v * w..v * w + w].to_vec();
        for s in 0..e {
            let mut addrs = Vec::with_capacity(w);
            for lane in 0..w {
                let t = v * w + lane;
                let addr = match trace[t * e + s] {
                    Took::A => {
                        let x = a_pos[lane];
                        a_pos[lane] += 1;
                        x
                    }
                    Took::B => {
                        let x = b_base + b_pos[lane];
                        b_pos[lane] += 1;
                        x
                    }
                };
                addrs.push(addr as u32);
            }
            conflicts += u64::from(banks.round_cost(&addrs).conflicts);
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::super::tuples::warp_tuples;
    use super::*;
    use cfmerge_mergepath::serial::{serial_merge_traced, Took};

    #[test]
    fn assign_sides_is_balanced() {
        for &(w, e) in &[(32usize, 15usize), (32, 17), (32, 16), (12, 9), (9, 6), (12, 5)] {
            let p = WcParams::new(w, e);
            for warps in [2usize, 4, 6] {
                let out_len = warps * w * e;
                let sides = assign_sides(&p, out_len);
                assert_eq!(sides.len(), out_len);
                let a_count = sides.iter().filter(|&&s| s).count();
                assert_eq!(a_count, out_len / 2, "w={w} E={e} warps={warps}");
            }
        }
    }

    #[test]
    fn merge_pair_realizes_the_tuples() {
        // Merging the constructed pair must consume exactly per the warp
        // tuple sequence: thread t's E outputs take a_t from A, b_t from B.
        for &(w, e) in &[(32usize, 15usize), (32, 17), (12, 9), (12, 5), (9, 6)] {
            let p = WcParams::new(w, e);
            let b = WorstCaseBuilder::new(w, e, w);
            let (av, bv) = b.merge_pair(2);
            assert_eq!(av.len() + bv.len(), 2 * w * e);
            assert_eq!(av.len(), bv.len());
            assert!(av.is_sorted() && bv.is_sorted());
            let (merged, trace) = serial_merge_traced(&av, &bv);
            assert_eq!(merged, (0..(2 * w * e) as u32).collect::<Vec<_>>());
            // Per-thread consumption counts.
            let mut tuples = warp_tuples(&p, false);
            tuples.extend(warp_tuples(&p, true));
            for (t, &(a_t, b_t)) in tuples.iter().enumerate() {
                let seg = &trace[t * e..(t + 1) * e];
                let took_a = seg.iter().filter(|&&x| x == Took::A).count();
                assert_eq!(took_a, a_t, "w={w} E={e} thread={t}");
                assert_eq!(e - took_a, b_t);
            }
        }
    }

    #[test]
    fn measured_conflicts_match_theorem8() {
        // Simulate the baseline merge lock-step on constructed pairs and
        // compare against Theorem 8's closed forms. The theorem counts
        // "E conflicts per aligned column scan" (E·#columns); the exact
        // per-step serialization count is E·(#columns − 1) plus incidental
        // collisions, so we accept a band around the prediction.
        for &(w, e) in &[
            (32usize, 15usize),
            (32, 17),
            (32, 16),
            (32, 24),
            (12, 5),
            (12, 9),
            (9, 6),
            (8, 6),
            (16, 12),
        ] {
            let warps = 4;
            let measured = lockstep_baseline_conflicts(w, e, warps) as f64 / warps as f64;
            let predicted = super::super::theorem8::predicted_warp_conflicts(w, e) as f64;
            // The theorem counts E per aligned column; exact per-step
            // serialization is E·(columns−1)-ish, so allow E·d of
            // boundary slack below and 30% above.
            let slack = (e * WcParams::new(w, e).d) as f64;
            assert!(
                measured >= 0.7 * predicted - slack && measured <= 1.3 * predicted + slack,
                "w={w} E={e}: measured {measured} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn worst_case_far_exceeds_random_conflicts() {
        // Sanity: the construction is orders of magnitude above a random
        // merge's conflicts for the headline parameters.
        use cfmerge_gpu_sim::banks::BankModel;
        use rand::{Rng, SeedableRng};
        let (w, e, warps) = (32usize, 15usize, 4usize);
        let worst = lockstep_baseline_conflicts(w, e, warps);

        // Random baseline: random sorted pair of the same size.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(12345);
        let total = warps * w * e;
        let mut av: Vec<u32> = (0..total as u32 / 2).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut bv: Vec<u32> = (0..total as u32 / 2).map(|_| rng.gen_range(0..1_000_000)).collect();
        av.sort_unstable();
        bv.sort_unstable();
        let (_, trace) = serial_merge_traced(&av, &bv);
        let banks = BankModel::new(w as u32);
        let mut conflicts = 0u64;
        let mut a_pos = vec![0usize; warps * w];
        let mut b_pos = vec![0usize; warps * w];
        let (mut ca, mut cb) = (0, 0);
        for t in 0..warps * w {
            a_pos[t] = ca;
            b_pos[t] = cb;
            let seg = &trace[t * e..(t + 1) * e];
            ca += seg.iter().filter(|&&x| x == Took::A).count();
            cb += seg.iter().filter(|&&x| x == Took::B).count();
        }
        for v in 0..warps {
            for s in 0..e {
                let mut addrs = Vec::with_capacity(w);
                for lane in 0..w {
                    let t = v * w + lane;
                    let addr = match trace[t * e + s] {
                        Took::A => {
                            let x = a_pos[t];
                            a_pos[t] += 1;
                            x
                        }
                        Took::B => {
                            let x = av.len() + b_pos[t];
                            b_pos[t] += 1;
                            x
                        }
                    };
                    addrs.push(addr as u32);
                }
                conflicts += u64::from(banks.round_cost(&addrs).conflicts);
            }
        }
        assert!(
            worst > 3 * conflicts.max(1),
            "worst-case ({worst}) should dwarf random ({conflicts})"
        );
    }

    #[test]
    fn build_produces_a_permutation() {
        let b = WorstCaseBuilder::new(32, 15, 64);
        let n = 64 * 15 * 8; // tile · 2³
        let input = b.build(n);
        let mut sorted = input.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn build_single_tile_and_subtile() {
        let b = WorstCaseBuilder::new(32, 15, 64);
        let input = b.build(64 * 15);
        assert_eq!(input.len(), 960);
        let small = b.build(15 * 4);
        assert_eq!(small.len(), 60);
    }

    #[test]
    fn every_level_of_the_tree_merges_consistently() {
        // Unmerging then re-merging level by level must reproduce the
        // sorted sequence — i.e. the construction is a consistent merge
        // tree, not just a permutation.
        let b = WorstCaseBuilder::new(8, 5, 16);
        let tile = 80;
        let n = tile * 4;
        let input = b.build(n);
        // Simulate the sort's merge tree: sort tiles, then merge pairwise.
        let mut runs: Vec<Vec<u32>> = input
            .chunks(tile)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_unstable();
                v
            })
            .collect();
        while runs.len() > 1 {
            runs = runs
                .chunks(2)
                .map(|pair| {
                    let mut out = Vec::new();
                    cfmerge_mergepath::serial::serial_merge(&pair[0], &pair[1], &mut out);
                    out
                })
                .collect();
        }
        assert_eq!(runs[0], (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "n = uE·2^k")]
    fn bad_n_rejected() {
        let _ = WorstCaseBuilder::new(32, 15, 64).build(64 * 15 * 3);
    }

    #[test]
    #[should_panic(expected = "even multiple")]
    fn assign_sides_rejects_ragged_lengths() {
        let p = WcParams::new(32, 15);
        let _ = assign_sides(&p, 32 * 15);
    }
}
