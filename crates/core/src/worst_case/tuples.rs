//! The tuple sequences `S` and `T` of Section 4.
//!
//! A *tuple* `(a, b)` with `a + b = E` prescribes how many elements a
//! thread consumes from each list. The worst case packs as many full
//! scans — `(E, 0)` and `(0, E)` — as possible, with the mixed tuples of
//! `S` inserted between groups to keep every scan's start address
//! congruent to `w − E (mod w)`, i.e. vertically aligned in the bottom
//! `E` banks (Figure 4).
//!
//! With `w = qE + r` (Euclid) and `d = gcd(w, E) = gcd(E, r)`
//! (Corollary 17), the sequence `S` is built from
//! `sᵢ = i·(r/d) mod (E/d)`, `xᵢ = (E/d − sᵢ)d`, `yᵢ = sᵢ·d`
//! (Lemmas 5–7), and `T` interleaves `S` with runs of `q` or `q − 1` full
//! scans so that consecutive scan groups advance the offset by exactly
//! `w` positions (mod bank wrap).

use cfmerge_numtheory::division::euclid_div;
use cfmerge_numtheory::gcd;

/// A consumption tuple `(a, b)`: the thread reads `a` elements of `A` and
/// `b` of `B`, `a + b = E`.
pub type Tuple = (usize, usize);

/// Decomposed parameters of the construction for one `(w, E)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcParams {
    /// Warp width.
    pub w: usize,
    /// Elements per thread.
    pub e: usize,
    /// `gcd(w, E)`.
    pub d: usize,
    /// `w = qE + r`.
    pub q: usize,
    /// `w = qE + r`, `0 ≤ r < E`.
    pub r: usize,
}

impl WcParams {
    /// Compute the derived quantities.
    ///
    /// # Panics
    /// Panics unless `1 < E ≤ w` (the construction's range; Theorem 8).
    #[must_use]
    pub fn new(w: usize, e: usize) -> Self {
        assert!(e > 1 && e <= w, "worst-case construction requires 1 < E ≤ w (E={e}, w={w})");
        let d = gcd(w as u64, e as u64) as usize;
        let (q, r) = euclid_div(w as i64, e as i64);
        Self { w, e, d, q: q as usize, r: r as usize }
    }
}

/// `sᵢ = i·(r/d) mod (E/d)` for `i ∈ {1, …, E/d − 1}` (all distinct by
/// Lemma 5). Returned indexed from `i = 1` (index 0 holds `s₁`).
#[must_use]
pub fn sequence_s_values(p: &WcParams) -> Vec<usize> {
    let ed = p.e / p.d;
    let rd = p.r / p.d;
    (1..ed).map(|i| (i * rd) % ed).collect()
}

/// The sequence `S` of mixed tuples `(aᵢ, bᵢ)`, `i ∈ {1, …, E/d − 1}`:
/// `aᵢ = xᵢ` for even `i`, `yᵢ` for odd `i` (and `bᵢ` the complement).
#[must_use]
pub fn sequence_s(p: &WcParams) -> Vec<Tuple> {
    let svals = sequence_s_values(p);
    let ed = p.e / p.d;
    svals
        .iter()
        .enumerate()
        .map(|(idx, &s)| {
            let i = idx + 1;
            let x = (ed - s) * p.d;
            let y = s * p.d;
            if i % 2 == 0 {
                (x, y)
            } else {
                (y, x)
            }
        })
        .collect()
}

/// The full per-subproblem sequence `T`: `w/d` tuples assigning elements
/// to the `w/d` threads of one subproblem of `wE/d` elements.
///
/// Follows the three construction steps of Section 4 verbatim; when
/// `E/d = 1` (i.e. `E | w`, so `r = 0` and `S` is empty) the sequence
/// degenerates to `q` full `(E, 0)` scans.
#[must_use]
pub fn sequence_t(p: &WcParams) -> Vec<Tuple> {
    let ed = p.e / p.d;
    let e = p.e;
    let q = p.q;
    let mut t: Vec<Tuple> = Vec::with_capacity(p.w / p.d);
    if ed == 1 {
        // Degenerate case E | w: all threads scan A.
        t.extend(std::iter::repeat_n((e, 0), q));
        debug_assert_eq!(t.len(), p.w / p.d);
        return t;
    }
    let s = sequence_s(p);
    let svals = sequence_s_values(p);
    let x = |i: usize| (ed - svals[i - 1]) * p.d; // xᵢ, i ≥ 1
    let y = |i: usize| svals[i - 1] * p.d; // yᵢ

    // Step 1: (a₁, b₁) = (y₁, x₁) = (r, E − r), then q tuples of (E, 0).
    t.push(s[0]);
    t.extend(std::iter::repeat_n((e, 0), q));

    // Step 2: for i = 1 … E/d − 2, insert (aᵢ₊₁, bᵢ₊₁) then fillers.
    #[allow(clippy::needless_range_loop)] // i is the paper's index variable
    for i in 1..=ed - 2 {
        t.push(s[i]); // S is 0-indexed: s[i] = tuple i+1
        let gap = x(i) + y(i + 1);
        let count = if gap == p.r {
            q
        } else {
            debug_assert_eq!(gap, p.e + p.r, "Lemma 7 violated at i={i}");
            q - 1
        };
        let filler = if i % 2 == 0 { (e, 0) } else { (0, e) };
        t.extend(std::iter::repeat_n(filler, count));
    }

    // Step 3: q tuples of (E,0) if (E/d − 1) even, else (0,E).
    let filler = if (ed - 1).is_multiple_of(2) { (e, 0) } else { (0, e) };
    t.extend(std::iter::repeat_n(filler, q));

    t
}

/// A full warp's tuple sequence: the `d` subproblems concatenated, with
/// alternating orientation (odd subproblems swap `(a, b)` — the
/// "symmetric case" of Section 4) so that consecutive subproblems consume
/// balanced amounts of `A` and `B`. `flip` swaps the orientation of the
/// whole warp (used by the builder to balance consecutive warps).
#[must_use]
pub fn warp_tuples(p: &WcParams, flip: bool) -> Vec<Tuple> {
    let t = sequence_t(p);
    let mut out = Vec::with_capacity(p.w);
    for sub in 0..p.d {
        let swap = (sub % 2 == 1) ^ flip;
        for &(a, b) in &t {
            out.push(if swap { (b, a) } else { (a, b) });
        }
    }
    debug_assert_eq!(out.len(), p.w);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_params() -> Vec<WcParams> {
        let mut v = Vec::new();
        for w in 2..=40usize {
            for e in 2..=w {
                v.push(WcParams::new(w, e));
            }
        }
        v
    }

    #[test]
    fn params_decomposition() {
        let p = WcParams::new(32, 15);
        assert_eq!((p.d, p.q, p.r), (1, 2, 2));
        let p = WcParams::new(32, 17);
        assert_eq!((p.d, p.q, p.r), (1, 1, 15));
        let p = WcParams::new(12, 9);
        assert_eq!((p.d, p.q, p.r), (3, 1, 3));
        let p = WcParams::new(32, 16);
        assert_eq!((p.d, p.q, p.r), (16, 2, 0));
    }

    #[test]
    fn lemma5_s_values_distinct() {
        for p in all_params() {
            let s = sequence_s_values(&p);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), s.len(), "w={} E={}", p.w, p.e);
        }
    }

    #[test]
    fn lemma6_reflection() {
        // E/d − sᵢ = s_{E/d − i}.
        for p in all_params() {
            let ed = p.e / p.d;
            let s = sequence_s_values(&p);
            for i in 1..ed {
                let lhs = (ed - s[i - 1]) % ed;
                let rhs = s[(ed - i) - 1] % ed;
                assert_eq!(lhs % ed, rhs, "w={} E={} i={i}", p.w, p.e);
            }
        }
    }

    #[test]
    fn lemma7_gap_values() {
        // xᵢ + yᵢ₊₁ ∈ {r, E + r}, with r iff xᵢ < r.
        for p in all_params() {
            let ed = p.e / p.d;
            if ed < 3 {
                continue;
            }
            let s = sequence_s_values(&p);
            for i in 1..=ed - 2 {
                let x_i = (ed - s[i - 1]) * p.d;
                let y_i1 = s[i] * p.d;
                let gap = x_i + y_i1;
                if x_i < p.r {
                    assert_eq!(gap, p.r, "w={} E={} i={i}", p.w, p.e);
                } else {
                    assert_eq!(gap, p.e + p.r, "w={} E={} i={i}", p.w, p.e);
                }
            }
        }
    }

    #[test]
    fn t_has_length_w_over_d_and_conserves_elements() {
        for p in all_params() {
            let t = sequence_t(&p);
            assert_eq!(t.len(), p.w / p.d, "w={} E={}", p.w, p.e);
            for &(a, b) in &t {
                assert_eq!(a + b, p.e, "each thread consumes E (w={} E={})", p.w, p.e);
            }
            let total: usize = t.iter().map(|&(a, b)| a + b).sum();
            assert_eq!(total, p.w * p.e / p.d, "subproblem size wE/d");
        }
    }

    #[test]
    fn paper_example_w32_e15() {
        // w = 32, E = 15: q = 2, r = 2, d = 1. T starts
        // (2, 13), (15,0), (15,0), … and |T| = 32.
        let p = WcParams::new(32, 15);
        let t = sequence_t(&p);
        assert_eq!(t.len(), 32);
        assert_eq!(t[0], (2, 13));
        assert_eq!(t[1], (15, 0));
        assert_eq!(t[2], (15, 0));
        // Count full scans: |T| − (E/d − 1) mixed tuples = 32 − 14 = 18.
        let scans = t.iter().filter(|&&(a, b)| a == 15 || b == 15).count();
        assert_eq!(scans, 18);
    }

    #[test]
    fn warp_tuples_cover_w_threads_and_balance_pairs() {
        for p in all_params() {
            let normal = warp_tuples(&p, false);
            let flipped = warp_tuples(&p, true);
            assert_eq!(normal.len(), p.w);
            assert_eq!(flipped.len(), p.w);
            // A flipped warp consumes exactly what the normal warp
            // consumes from the other list, so a (normal, flipped) pair
            // is perfectly balanced.
            let a_n: usize = normal.iter().map(|&(a, _)| a).sum();
            let a_f: usize = flipped.iter().map(|&(a, _)| a).sum();
            let b_n: usize = normal.iter().map(|&(_, b)| b).sum();
            assert_eq!(a_f, b_n);
            assert_eq!(a_n + a_f, p.w * p.e, "w={} E={}", p.w, p.e);
        }
    }

    #[test]
    fn subproblem_a_consumption_is_a_multiple_of_w() {
        // Needed so every subproblem's scans start at bank-aligned
        // offsets when assembled (Section 4's alignment argument).
        for p in all_params() {
            let t = sequence_t(&p);
            let a_total: usize = t.iter().map(|&(a, _)| a).sum();
            assert_eq!(a_total % p.w, 0, "w={} E={} a_total={a_total}", p.w, p.e);
            // And it matches the paper's stated ⌈E/2d⌉·w (for E/d ≥ 2 the
            // construction alternates scan directions; the A side gets
            // the ceiling).
            let ed = p.e / p.d;
            if ed >= 2 {
                assert_eq!(a_total, ed.div_ceil(2) * p.d * p.w / p.d, "w={} E={}", p.w, p.e);
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 < E ≤ w")]
    fn e_too_large_rejected() {
        let _ = WcParams::new(8, 9);
    }

    #[test]
    #[should_panic(expected = "1 < E ≤ w")]
    fn e_one_rejected() {
        let _ = WcParams::new(8, 1);
    }
}
