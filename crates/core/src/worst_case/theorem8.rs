//! Theorem 8: closed-form worst-case conflict counts.
//!
//! Using the tuple sequence `T` to assign elements, the serial-merge scans
//! of one warp incur
//!
//! ```text
//! E²                                   if 1 < E ≤ w/2   (q > 1)
//! (E² + 2Er + Ed − r² − rd) / 2        if w/2 < E ≤ w   (q = 1)
//! ```
//!
//! total bank conflicts (summing the per-subproblem counts over the `d`
//! subproblems; each subproblem contributes `E²/d` in the first case and
//! `(E²/d + 2Er/d + E − r²/d − r)/2` in the second).

use super::tuples::WcParams;

/// Predicted conflicts for one subproblem of `w/d` threads (Theorem 8's
/// per-subproblem statement).
#[must_use]
pub fn predicted_subproblem_conflicts(w: usize, e: usize) -> u64 {
    let p = WcParams::new(w, e);
    let (e_, d, r) = (e as u64, p.d as u64, p.r as u64);
    if p.q > 1 {
        e_ * e_ / d
    } else {
        (e_ * e_ / d + 2 * e_ * r / d + e_ - r * r / d - r) / 2
    }
}

/// Predicted conflicts for a full warp (`d` subproblems combined — the
/// boxed formula at the end of Section 4).
///
/// ```
/// use cfmerge_core::worst_case::predicted_warp_conflicts;
/// // The paper's headline parameters:
/// assert_eq!(predicted_warp_conflicts(32, 15), 225); // E ≤ w/2 → E²
/// assert_eq!(predicted_warp_conflicts(32, 17), 288); // w/2 < E ≤ w
/// ```
#[must_use]
pub fn predicted_warp_conflicts(w: usize, e: usize) -> u64 {
    let p = WcParams::new(w, e);
    let (e_, d, r) = (e as u64, p.d as u64, p.r as u64);
    if p.q > 1 {
        e_ * e_
    } else {
        (e_ * e_ + 2 * e_ * r + e_ * d - r * r - r * d) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_parameters() {
        // E = 15, w = 32: q = 2 > 1 → E² = 225 conflicts per warp.
        assert_eq!(predicted_warp_conflicts(32, 15), 225);
        // E = 17, w = 32: q = 1, r = 15, d = 1 →
        // (289 + 510 + 17 − 225 − 15)/2 = 288.
        assert_eq!(predicted_warp_conflicts(32, 17), 288);
        // E = 16, w = 32: q = 2 → 256.
        assert_eq!(predicted_warp_conflicts(32, 16), 256);
    }

    #[test]
    fn warp_is_d_times_subproblem() {
        for w in 2..=40usize {
            for e in 2..=w {
                let p = WcParams::new(w, e);
                let per_sub = predicted_subproblem_conflicts(w, e);
                let warp = predicted_warp_conflicts(w, e);
                // All divisions in the formulas are exact (d | E, d | r),
                // so d·per_sub == warp exactly.
                assert_eq!(per_sub * p.d as u64, warp, "w={w} E={e}");
            }
        }
    }

    #[test]
    fn e_equals_w_degenerates_gracefully() {
        // d = E = w, r = 0: q = 1, formula = (E² + E·E)/2 = E².
        for w in [4usize, 8, 12, 32] {
            assert_eq!(predicted_warp_conflicts(w, w), (w * w) as u64);
        }
    }

    #[test]
    fn counts_grow_with_e_roughly_quadratically() {
        let mut prev = 0;
        for e in 2..=16usize {
            let c = predicted_warp_conflicts(32, e);
            assert!(c >= prev, "E={e}");
            prev = c;
        }
        // Upper bound: a warp performs E rounds of ≤ w-way conflicts.
        for e in 2..=32usize {
            assert!(predicted_warp_conflicts(32, e) <= (e * 32) as u64);
        }
    }

    #[test]
    fn division_exactness() {
        // The fractions in Theorem 8 are integers for every valid (w, E):
        // check no truncation happened by recomputing in i128 with exact
        // rational arithmetic.
        for w in 2..=48usize {
            for e in 2..=w {
                let p = WcParams::new(w, e);
                let (e_, d, r) = (e as i128, p.d as i128, p.r as i128);
                if p.q == 1 {
                    let num = e_ * e_ + 2 * e_ * r + e_ * d - r * r - r * d;
                    assert_eq!(num % 2, 0, "w={w} E={e}");
                    assert_eq!(predicted_warp_conflicts(w, e) as i128, num / 2, "w={w} E={e}");
                }
                assert_eq!(e_ * e_ % d, 0);
                assert_eq!(r % d, 0);
            }
        }
    }
}
