//! Software parameters of the mergesort pipelines.
//!
//! Both pipelines are parameterized by `E` (elements per thread; the
//! paper's `E`) and `u` (threads per block). A thread block processes a
//! tile of `u·E` keys. Thrust ships with `E = 17, u = 256`; Berney &
//! Sitchinava's earlier work found `E = 15, u = 512` faster on the
//! RTX 2080 Ti thanks to 100% theoretical occupancy, and the paper
//! evaluates both. Both values are coprime with `w = 32` — Thrust's
//! existing heuristic against bank conflicts, which CF-Merge makes
//! unnecessary.

use cfmerge_json::{FromJson, Json, JsonError, ToJson};
use cfmerge_numtheory::gcd;

/// `(E, u)` software parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortParams {
    /// Elements per thread (`E`).
    pub e: usize,
    /// Threads per block (`u`).
    pub u: usize,
}

impl SortParams {
    /// New parameter set.
    ///
    /// # Panics
    /// Panics if either value is zero.
    #[must_use]
    pub fn new(e: usize, u: usize) -> Self {
        assert!(e > 0 && u > 0, "E and u must be positive");
        Self { e, u }
    }

    /// The paper's preferred parameters: `E = 15, u = 512`
    /// (100% occupancy on the RTX 2080 Ti).
    #[must_use]
    pub fn e15_u512() -> Self {
        Self { e: 15, u: 512 }
    }

    /// Thrust's shipped parameters: `E = 17, u = 256`.
    #[must_use]
    pub fn e17_u256() -> Self {
        Self { e: 17, u: 256 }
    }

    /// The service stack's historical known-good substitute config —
    /// Thrust's shipped `E = 17, u = 256`, which launches on every
    /// supported device and is coprime with `w = 32`. This is the single
    /// definition behind breaker quarantine and unlaunchable-config
    /// substitution; a service with a tuning ladder installed
    /// (`crate::tuning`) supersedes it by stepping down certified rungs
    /// instead.
    #[must_use]
    pub fn known_good_default() -> Self {
        Self::e17_u256()
    }

    /// Keys per block tile (`u·E`).
    #[must_use]
    pub fn tile(&self) -> usize {
        self.u * self.e
    }

    /// `d = gcd(w, E)` for a given warp width.
    #[must_use]
    pub fn d(&self, w: usize) -> usize {
        gcd(w as u64, self.e as u64) as usize
    }

    /// Whether `E` is coprime with the warp width (Thrust's heuristic).
    #[must_use]
    pub fn coprime(&self, w: usize) -> bool {
        self.d(w) == 1
    }

    /// Shared-memory bytes per block for 4-byte keys.
    #[must_use]
    pub fn shared_bytes(&self) -> u32 {
        (self.tile() * 4) as u32
    }

    /// Validate against a warp width: `u` must be a positive multiple of
    /// `w` so the block consists of complete warps (the paper's standing
    /// assumption).
    ///
    /// # Panics
    /// Panics if `u % w != 0` or `E > w` (the analysis range `1 < E ≤ w`
    /// with `E = 1` allowed degenerately for tests).
    pub fn validate(&self, w: usize) {
        assert!(w > 0 && self.u.is_multiple_of(w), "u={} must be a multiple of w={w}", self.u);
        assert!(self.e <= w, "E={} must be at most w={w} (paper range 1 < E ≤ w)", self.e);
    }
}

impl ToJson for SortParams {
    fn to_json(&self) -> Json {
        Json::obj([("e", Json::from(self.e)), ("u", Json::from(self.u))])
    }
}

impl FromJson for SortParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let params = Self { e: v.field("e")?, u: v.field("u")? };
        if params.e == 0 || params.u == 0 {
            return Err(JsonError::new("SortParams: E and u must be positive"));
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let a = SortParams::e15_u512();
        assert_eq!((a.e, a.u, a.tile()), (15, 512, 7680));
        assert!(a.coprime(32));
        let b = SortParams::e17_u256();
        assert_eq!((b.e, b.u, b.tile()), (17, 256, 4352));
        assert!(b.coprime(32));
        a.validate(32);
        b.validate(32);
    }

    #[test]
    fn gcd_and_coprime() {
        assert_eq!(SortParams::new(16, 512).d(32), 16);
        assert!(!SortParams::new(16, 512).coprime(32));
        assert_eq!(SortParams::new(6, 36).d(9), 3);
    }

    #[test]
    fn shared_bytes_match_occupancy_discussion() {
        assert_eq!(SortParams::e15_u512().shared_bytes(), 30720);
        assert_eq!(SortParams::e17_u256().shared_bytes(), 17408);
    }

    #[test]
    #[should_panic(expected = "multiple of w")]
    fn bad_u_rejected() {
        SortParams::new(15, 100).validate(32);
    }

    #[test]
    #[should_panic(expected = "at most w")]
    fn oversized_e_rejected() {
        SortParams::new(33, 512).validate(32);
    }
}
