//! The block-sort kernel: sort one tile of `u·E` keys inside a block.
//!
//! Structure (both pipelines):
//!
//! 1. coalesced tile load, global → shared;
//! 2. each thread pulls its `E` contiguous keys into registers (strided
//!    reads — conflict-free exactly when `E` is coprime with `w`, which
//!    is why Thrust's heuristic picks such `E`), sorts them with an
//!    odd-even transposition network, writes them back;
//! 3. `log₂ u` merge rounds: run width `W = E, 2E, …, uE/2`; each thread
//!    finds its merge-path split inside its pair and moves `E` merged
//!    outputs to registers — by serial merge (baseline) or by the dual
//!    subsequence gather (CF) — then stores them for the next round;
//! 4. coalesced tile store, shared → global.
//!
//! The CF variant keeps each pair in the reversed-`B` layout between
//! rounds *at no extra cost*: the store of round `k` writes directly into
//! round `k+1`'s layout (the "reorder during transfer" of Section 5).

use super::kernels::{
    clamped_split, gather_merge_from_shared, serial_merge_from_shared, shared_merge_path,
    PairLayout,
};
use crate::gather::layout::CfLayout;
use crate::gather::schedule::ThreadSplit;
use crate::sort::key::SortKey;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::check::{MemCheck, NoCheck};
use cfmerge_gpu_sim::fault::{FaultInjector, NoFaults};
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};
use cfmerge_gpu_sim::trace::{NullTracer, Tracer};
use cfmerge_mergepath::networks::{oets_ops, oets_sort};

/// How threads move `(Aᵢ, Bᵢ)` from shared memory to registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Thrust baseline: data-dependent serial merge in shared memory.
    DirectSerial,
    /// CF-Merge: dual subsequence gather + register network.
    Gather,
}

/// Shared slot for block-local rank `r` under the CF inter-round layout
/// with run width `W` (pairs of `2W`): `A` half natural, `B` half
/// reversed within the pair.
fn cf_rank_slot(r: usize, run_w: usize) -> usize {
    let pair = 2 * run_w;
    let p = r / pair;
    let rel = r % pair;
    if rel < run_w {
        r
    } else {
        // B element with offset y = rel − W lands at pair-local
        // 2W − 1 − y (the π reversal).
        p * pair + (pair - 1 - (rel - run_w))
    }
}

/// Sort one tile. Reads `src_tile` (global), writes the sorted tile to
/// `dst_tile`. `global_base` is the tile's element offset in the global
/// array (for exact coalescing accounting). Returns the block's profile.
///
/// # Panics
/// Panics unless `u` is a power-of-two multiple of the warp width and the
/// tile slices have length `u·E`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn blocksort_block<K: SortKey>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src_tile: &[K],
    dst_tile: &mut [K],
    global_base: usize,
    count_accesses: bool,
) -> KernelProfile {
    blocksort_block_traced(
        banks,
        u,
        e,
        strategy,
        src_tile,
        dst_tile,
        global_base,
        count_accesses,
        NullTracer,
    )
    .0
}

/// [`blocksort_block`] observed by a [`Tracer`]: identical execution, but
/// every phase and warp round is reported to `tracer`, which is returned
/// alongside the profile.
///
/// # Panics
/// Same conditions as [`blocksort_block`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn blocksort_block_traced<K: SortKey, Tr: Tracer>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src_tile: &[K],
    dst_tile: &mut [K],
    global_base: usize,
    count_accesses: bool,
    tracer: Tr,
) -> (KernelProfile, Tr) {
    let (profile, tracer, NoCheck) = blocksort_block_checked(
        banks,
        u,
        e,
        strategy,
        src_tile,
        dst_tile,
        global_base,
        count_accesses,
        tracer,
        NoCheck,
    );
    (profile, tracer)
}

/// [`blocksort_block`] observed by both a [`Tracer`] and a [`MemCheck`]
/// checker (e.g. the [`Sanitizer`](cfmerge_gpu_sim::Sanitizer)): identical
/// execution, with every memory access additionally routed through
/// `checker`, which is returned alongside the profile and tracer.
///
/// # Panics
/// Same conditions as [`blocksort_block`].
#[must_use]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // kernel signature mirrors the CUDA launch; loops index parallel register arrays
pub fn blocksort_block_checked<K: SortKey, Tr: Tracer, Ck: MemCheck>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src_tile: &[K],
    dst_tile: &mut [K],
    global_base: usize,
    count_accesses: bool,
    tracer: Tr,
    checker: Ck,
) -> (KernelProfile, Tr, Ck) {
    let (profile, tracer, checker, NoFaults) = blocksort_block_faulty(
        banks,
        u,
        e,
        strategy,
        src_tile,
        dst_tile,
        global_base,
        count_accesses,
        tracer,
        checker,
        NoFaults,
    );
    (profile, tracer, checker)
}

/// [`blocksort_block`] corrupted by a [`FaultInjector`] (see
/// [`cfmerge_gpu_sim::fault`]) in addition to the tracer and checker
/// hooks. With [`NoFaults`] this *is* [`blocksort_block_checked`] —
/// bit-identical execution. With an active injector, scheduled bit-flips,
/// stuck banks, and lane drop-outs corrupt the tile; corrupted merge-path
/// search results are clamped into geometric bounds (see
/// `clamped_split`) so corruption always surfaces as wrong output data —
/// detectable by verification — never as a host-side panic.
///
/// # Panics
/// Same conditions as [`blocksort_block`].
#[must_use]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // kernel signature mirrors the CUDA launch; loops index parallel register arrays
pub fn blocksort_block_faulty<K: SortKey, Tr: Tracer, Ck: MemCheck, Fi: FaultInjector>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src_tile: &[K],
    dst_tile: &mut [K],
    global_base: usize,
    count_accesses: bool,
    tracer: Tr,
    checker: Ck,
    injector: Fi,
) -> (KernelProfile, Tr, Ck, Fi) {
    let w = banks.num_banks as usize;
    assert!(
        u.is_multiple_of(w) && u.is_power_of_two(),
        "u={u} must be a power-of-two multiple of w={w}"
    );
    let tile = u * e;
    assert_eq!(src_tile.len(), tile);
    assert_eq!(dst_tile.len(), tile);

    let mut block =
        BlockSim::<K, Tr, Ck, Fi>::with_faults(banks, u, tile, tracer, checker, injector);
    block.set_counting(count_accesses);

    // 1. Coalesced load.
    block.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..e {
            let s = r * u + tid;
            let v = lane.ld_global(src_tile, s);
            lane.alu(2);
            // Record absolute-coalescing by offsetting: the trace stores
            // the tile-relative index; tiles are sector-aligned so the
            // sector count is identical. Store natural.
            lane.st(s, v);
        }
    });
    let _ = global_base; // tiles are sector-aligned; relative indices suffice

    // 2. Per-thread register sort.
    let mut regs = vec![vec![K::default(); e]; u];
    block.phase(PhaseClass::Sort, |tid, lane| {
        for m in 0..e {
            regs[tid][m] = lane.ld(tid * e + m);
        }
        let ops = oets_sort(&mut regs[tid]);
        debug_assert_eq!(ops, oets_ops(e));
        lane.alu(3 * ops);
    });
    // Store back — into round-0 layout for CF (run width E).
    block.phase(PhaseClass::Sort, |tid, lane| {
        for m in 0..e {
            let rank = tid * e + m;
            let slot = match strategy {
                MergeStrategy::DirectSerial => rank,
                MergeStrategy::Gather => cf_rank_slot(rank, e),
            };
            lane.st(slot, regs[tid][m]);
        }
    });

    // 3. Merge rounds.
    let mut run_w = e;
    while run_w < tile {
        let pair = 2 * run_w;
        let threads_per_pair = pair / e;
        // 3a. merge-path search within each pair.
        let mut splits = vec![ThreadSplit { a_begin: 0, a_len: 0 }; u];
        {
            let mut a_begin = vec![0usize; u];
            block.phase(PhaseClass::Search, |tid, lane| {
                let p = tid / threads_per_pair;
                let local_rank = (tid % threads_per_pair) * e;
                let layout = pair_layout(strategy, w, e, p * pair, run_w);
                a_begin[tid] = shared_merge_path(lane, &layout, local_rank);
            });
            for tid in 0..u {
                let next = if (tid + 1) % threads_per_pair == 0 { run_w } else { a_begin[tid + 1] };
                let diag = (tid % threads_per_pair) * e;
                splits[tid] = clamped_split(a_begin[tid], next, diag, e, run_w, run_w);
            }
        }
        // 3b. move to registers (serial merge or gather).
        match strategy {
            MergeStrategy::DirectSerial => {
                block.phase(PhaseClass::Merge, |tid, lane| {
                    let p = tid / threads_per_pair;
                    let local_tid = tid % threads_per_pair;
                    let layout = pair_layout(strategy, w, e, p * pair, run_w);
                    let b_begin = local_tid * e - splits[tid].a_begin;
                    serial_merge_from_shared(lane, &layout, splits[tid], b_begin, &mut regs[tid]);
                });
            }
            MergeStrategy::Gather => {
                block.phase(PhaseClass::Gather, |tid, lane| {
                    let p = tid / threads_per_pair;
                    let local_tid = tid % threads_per_pair;
                    let layout = CfLayout::reversal_only(w, e, pair, run_w);
                    gather_merge_from_shared(
                        lane,
                        p * pair,
                        &layout,
                        local_tid,
                        splits[tid],
                        &mut regs[tid],
                    );
                });
            }
        }
        // 3c. store for the next round (or natural if this was the last).
        let next_w = pair;
        let last = next_w >= tile;
        block.phase(PhaseClass::Sort, |tid, lane| {
            for m in 0..e {
                let rank = tid * e + m;
                let slot = match strategy {
                    MergeStrategy::DirectSerial => rank,
                    MergeStrategy::Gather => {
                        if last {
                            rank
                        } else {
                            cf_rank_slot(rank, next_w)
                        }
                    }
                };
                lane.st(slot, regs[tid][m]);
            }
        });
        run_w = next_w;
    }

    // 4. Coalesced store.
    block.phase(PhaseClass::StoreTile, |tid, lane| {
        for r in 0..e {
            let s = r * u + tid;
            let v = lane.ld(s);
            lane.st_global(dst_tile, s, v);
            lane.alu(2);
        }
    });

    block.finish_faulty()
}

fn pair_layout(
    strategy: MergeStrategy,
    w: usize,
    e: usize,
    base: usize,
    run_w: usize,
) -> PairLayout {
    match strategy {
        MergeStrategy::DirectSerial => {
            PairLayout::Natural { base, a_total: run_w, total: 2 * run_w }
        }
        MergeStrategy::Gather => {
            PairLayout::Permuted { base, layout: CfLayout::reversal_only(w, e, 2 * run_w, run_w) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn run(
        u: usize,
        e: usize,
        w: u32,
        strategy: MergeStrategy,
        seed: u64,
    ) -> (Vec<u32>, KernelProfile) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let tile = u * e;
        let src: Vec<u32> = (0..tile).map(|_| rng.gen_range(0..100_000)).collect();
        let mut dst = vec![0u32; tile];
        let profile = blocksort_block(BankModel::new(w), u, e, strategy, &src, &mut dst, 0, true);
        let mut expect = src;
        expect.sort_unstable();
        assert_eq!(dst, expect, "blocksort output mismatch (u={u} E={e} w={w})");
        (dst, profile)
    }

    #[test]
    fn blocksort_sorts_both_strategies() {
        for &(u, e, w) in &[(32usize, 5usize, 32u32), (64, 15, 32), (64, 17, 32), (16, 5, 8)] {
            for strategy in [MergeStrategy::DirectSerial, MergeStrategy::Gather] {
                for seed in 0..3 {
                    let (out, _) = run(u, e, w, strategy, seed);
                    assert!(out.is_sorted(), "u={u} E={e} w={w} {strategy:?}");
                }
            }
        }
    }

    #[test]
    fn cf_blocksort_gather_phase_is_conflict_free_for_coprime_e() {
        for &(u, e, w) in &[(64usize, 15usize, 32u32), (64, 17, 32), (128, 5, 32), (32, 3, 8)] {
            let (_, profile) = run(u, e, w, MergeStrategy::Gather, 7);
            assert_eq!(profile.phase(PhaseClass::Gather).bank_conflicts(), 0, "u={u} E={e} w={w}");
            // No serial-merge phase at all in the CF pipeline.
            assert_eq!(profile.phase(PhaseClass::Merge).shared_ld_requests, 0);
        }
    }

    #[test]
    fn noncoprime_e_conflicts_in_baseline_strided_phases() {
        // E = 16, w = 32: the register load/store strides hit gcd = 16
        // conflicts; this is the regime Thrust's coprime heuristic avoids.
        let (_, base) = run(64, 16, 32, MergeStrategy::DirectSerial, 3);
        let sort_phase = base.phase(PhaseClass::Sort);
        assert!(
            sort_phase.st_bank_conflicts() > 0 || sort_phase.ld_bank_conflicts() > 0,
            "expected strided conflicts at E=16"
        );
        let (_, coprime) = run(64, 15, 32, MergeStrategy::DirectSerial, 3);
        assert_eq!(coprime.phase(PhaseClass::Sort).bank_conflicts(), 0);
    }

    #[test]
    fn duplicate_heavy_tiles_sort_correctly() {
        let u = 64;
        let e = 15;
        let tile = u * e;
        let src = vec![42u32; tile];
        let mut dst = vec![0u32; tile];
        for strategy in [MergeStrategy::DirectSerial, MergeStrategy::Gather] {
            let _ = blocksort_block(BankModel::new(32), u, e, strategy, &src, &mut dst, 0, true);
            assert!(dst.iter().all(|&x| x == 42));
        }
    }

    #[test]
    fn counting_off_still_sorts() {
        let u = 32;
        let e = 5;
        let src: Vec<u32> = (0..(u * e) as u32).rev().collect();
        let mut dst = vec![0u32; u * e];
        let p = blocksort_block(
            BankModel::new(32),
            u,
            e,
            MergeStrategy::Gather,
            &src,
            &mut dst,
            0,
            false,
        );
        assert!(dst.is_sorted());
        assert_eq!(p.total().shared_requests(), 0);
    }

    #[test]
    fn cf_rank_slot_is_a_bijection_per_width() {
        for run_w in [5usize, 10, 20, 40] {
            let tile = 80;
            let mut seen = vec![false; tile];
            for r in 0..tile {
                let s = cf_rank_slot(r, run_w);
                assert!(s < tile && !seen[s], "run_w={run_w} r={r}");
                seen[s] = true;
            }
        }
    }
}
