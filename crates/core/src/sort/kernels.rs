//! Shared-memory kernel building blocks used by both pipelines.
//!
//! Everything here runs *inside* a [`BlockSim`] phase body, against a
//! [`LaneCtx`] — the only way to touch memory, so all accounting is
//! automatic. The two pipelines differ only in which pieces they compose:
//!
//! | phase            | Thrust baseline               | CF-Merge                           |
//! |------------------|-------------------------------|------------------------------------|
//! | tile layout      | `A` then `B`, natural order   | `ρ(A ∪ π(B))`                      |
//! | partition search | binary search, natural slots  | binary search, permuted slots      |
//! | move to regs     | serial merge (data-dependent) | dual subsequence gather (oblivious)|
//! | merge            | done during the move          | odd-even transposition in registers|

use crate::gather::layout::CfLayout;
use crate::gather::schedule::{GatherSchedule, ThreadSplit};
use crate::sort::key::SortKey;
use cfmerge_gpu_sim::block::LaneCtx;
use cfmerge_gpu_sim::check::MemCheck;
use cfmerge_gpu_sim::fault::FaultInjector;
use cfmerge_mergepath::diagonal::merge_path_by;
use cfmerge_mergepath::networks::{oets_ops, oets_sort};

/// How a block's `[A | B]` pair is laid out in shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairLayout {
    /// Thrust baseline: `A` at `[base, base+|A|)`, `B` right after.
    Natural {
        /// Shared-memory offset of the pair region.
        base: usize,
        /// `|A|`.
        a_total: usize,
        /// `|A| + |B|`.
        total: usize,
    },
    /// CF-Merge: `ρ(A ∪ π(B))` at `[base, base+total)`.
    Permuted {
        /// Shared-memory offset of the pair region.
        base: usize,
        /// The permutation maps.
        layout: CfLayout,
    },
}

impl PairLayout {
    /// Shared slot of the `A` element at A-offset `x`.
    #[must_use]
    pub fn a_slot(&self, x: usize) -> usize {
        match *self {
            PairLayout::Natural { base, a_total, .. } => {
                debug_assert!(x < a_total);
                base + x
            }
            PairLayout::Permuted { base, layout } => base + layout.a_slot(x),
        }
    }

    /// Shared slot of the `B` element at B-offset `y`.
    #[must_use]
    pub fn b_slot(&self, y: usize) -> usize {
        match *self {
            PairLayout::Natural { base, a_total, total } => {
                debug_assert!(y < total - a_total);
                base + a_total + y
            }
            PairLayout::Permuted { base, layout } => base + layout.b_slot(y),
        }
    }

    /// `|A|`.
    #[must_use]
    pub fn a_total(&self) -> usize {
        match *self {
            PairLayout::Natural { a_total, .. } => a_total,
            PairLayout::Permuted { layout, .. } => layout.a_total,
        }
    }

    /// `|A| + |B|`.
    #[must_use]
    pub fn total(&self) -> usize {
        match *self {
            PairLayout::Natural { total, .. } => total,
            PairLayout::Permuted { layout, .. } => layout.total,
        }
    }
}

/// Assemble a thread's [`ThreadSplit`] from its own and its successor's
/// search results, clamping `a_len` into the geometrically valid range.
///
/// On a clean run the clamp is the identity: merge-path splits are
/// monotone and consecutive diagonals differ by `E`, so
/// `next − a_begin ∈ [lo, hi]` already. Under fault injection a corrupted
/// search can return any value within its binary-search bounds, making
/// neighbor results non-monotone; without the clamp the split arithmetic
/// would underflow or send the serial merge / gather schedule out of
/// bounds (a host-side panic no real GPU would produce — the hardware
/// would just read garbage). The clamp keeps every subsequent access
/// in-bounds so corruption surfaces as *wrong data*, which verification
/// catches, rather than as a simulator crash.
///
/// `diag` is the thread's output diagonal (`local_rank · E`), `a_total`/
/// `b_total` the pair's run lengths. Requires `a_begin ≤ min(diag,
/// a_total)` and `diag − a_begin ≤ b_total`, which the bounded
/// merge-path binary search guarantees even with a corrupted comparator.
pub(crate) fn clamped_split(
    a_begin: usize,
    next: usize,
    diag: usize,
    e: usize,
    a_total: usize,
    b_total: usize,
) -> ThreadSplit {
    let b_begin = diag - a_begin;
    // lo ≤ hi because (local_rank + 1)·E ≤ a_total + b_total for every
    // thread of the pair.
    let lo = e.saturating_sub(b_total - b_begin);
    let hi = e.min(a_total - a_begin);
    ThreadSplit { a_begin, a_len: next.saturating_sub(a_begin).clamp(lo, hi) }
}

/// Merge-path binary search against shared memory: the split of the first
/// `diag` outputs of the pair under `layout`. Charges two shared loads
/// and a few ALU ops per iteration, exactly as the device code would.
#[must_use]
pub fn shared_merge_path<K: SortKey, Ck: MemCheck, Fi: FaultInjector>(
    lane: &mut LaneCtx<'_, K, Ck, Fi>,
    layout: &PairLayout,
    diag: usize,
) -> usize {
    let a_len = layout.a_total();
    let b_len = layout.total() - a_len;
    let x = merge_path_by(diag, a_len, b_len, |i, j| {
        let a = lane.ld(layout.a_slot(i));
        let b = lane.ld(layout.b_slot(j));
        lane.alu(4); // compare + bound updates
        a <= b
    });
    lane.alu(4); // bounds setup
    x
}

/// The Thrust baseline's per-thread serial merge: `E` outputs taken from
/// shared memory with one data-dependent load per step (plus up to two
/// head preloads), written to the thread's register array `out`.
///
/// This is the phase the worst-case inputs of Section 4 attack.
pub fn serial_merge_from_shared<K: SortKey, Ck: MemCheck, Fi: FaultInjector>(
    lane: &mut LaneCtx<'_, K, Ck, Fi>,
    layout: &PairLayout,
    split: ThreadSplit,
    b_begin: usize,
    out: &mut [K],
) {
    let e = out.len();
    let a_end = split.a_begin + split.a_len;
    let b_len = e - split.a_len;
    let b_end = b_begin + b_len;
    let mut ai = split.a_begin;
    let mut bi = b_begin;
    // Head preloads (predicated off when a side is empty).
    let mut a_key = if ai < a_end { Some(lane.ld(layout.a_slot(ai))) } else { None };
    let mut b_key = if bi < b_end { Some(lane.ld(layout.b_slot(bi))) } else { None };
    for slot in out.iter_mut() {
        let take_a = match (a_key, b_key) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("split sizes guarantee E available elements"),
        };
        lane.alu(4); // compare, select, pointer bump, loop
        if take_a {
            *slot = a_key.expect("checked");
            ai += 1;
            a_key = if ai < a_end { Some(lane.ld(layout.a_slot(ai))) } else { None };
        } else {
            *slot = b_key.expect("checked");
            bi += 1;
            b_key = if bi < b_end { Some(lane.ld(layout.b_slot(bi))) } else { None };
        }
    }
}

/// CF-Merge's replacement for the serial merge: the dual subsequence
/// gather (`E` conflict-free loads) into registers, then an odd-even
/// transposition network to merge the rotated bitonic register array —
/// zero further shared-memory traffic.
///
/// `pair_tid` is the thread's index *within the pair* (equals `tid` for
/// whole-block pairs). Requires the shared region to hold the permuted
/// layout. Writes the merged outputs to `out`.
pub fn gather_merge_from_shared<K: SortKey, Ck: MemCheck, Fi: FaultInjector>(
    lane: &mut LaneCtx<'_, K, Ck, Fi>,
    base: usize,
    layout: &CfLayout,
    pair_tid: usize,
    split: ThreadSplit,
    out: &mut [K],
) {
    let e = out.len();
    debug_assert_eq!(e, layout.e);
    let sched = GatherSchedule::new(*layout, pair_tid, split);
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = lane.ld(base + sched.round(j).slot());
    }
    // Register merge: the array is a rotation of (A ascending, B
    // descending); OETS sorts it with a static compare-exchange schedule
    // (dynamic indexing would spill to local memory on a real GPU).
    let ops = oets_sort(out);
    debug_assert_eq!(ops, oets_ops(e));
    lane.alu(3 * ops); // ~3 instructions per compare-exchange
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_gpu_sim::banks::BankModel;
    use cfmerge_gpu_sim::block::BlockSim;
    use cfmerge_gpu_sim::profiler::PhaseClass;
    use cfmerge_mergepath::partition::partition_merge;
    use rand::{Rng, SeedableRng};

    fn sorted_pair(rng: &mut rand::rngs::SmallRng, la: usize, lb: usize) -> (Vec<u32>, Vec<u32>) {
        let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(0..10_000)).collect();
        let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(0..10_000)).collect();
        a.sort_unstable();
        b.sort_unstable();
        (a, b)
    }

    /// Drive a full single-block merge through search + serial merge and
    /// check the output against a CPU merge.
    #[test]
    fn baseline_block_merge_is_correct() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let (w, e) = (8usize, 5usize);
        let u = 16usize;
        for _ in 0..20 {
            let total = u * e;
            let la = rng.gen_range(0..=total);
            let (a, b) = sorted_pair(&mut rng, la, total - la);
            let layout = PairLayout::Natural { base: 0, a_total: a.len(), total };
            let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, total);
            block.phase(PhaseClass::LoadTile, |tid, lane| {
                for r in 0..e {
                    let s = r * u + tid;
                    let v = if s < a.len() { a[s] } else { b[s - a.len()] };
                    lane.st(s, v);
                }
            });
            let mut splits = vec![ThreadSplit { a_begin: 0, a_len: 0 }; u];
            block.phase(PhaseClass::Search, |tid, lane| {
                let x = shared_merge_path(lane, &layout, tid * e);
                splits[tid].a_begin = x;
            });
            for tid in 0..u {
                let next = if tid + 1 < u { splits[tid + 1].a_begin } else { a.len() };
                splits[tid].a_len = next - splits[tid].a_begin;
            }
            let mut out = vec![vec![0u32; e]; u];
            block.phase(PhaseClass::Merge, |tid, lane| {
                let b_begin = tid * e - splits[tid].a_begin;
                serial_merge_from_shared(lane, &layout, splits[tid], b_begin, &mut out[tid]);
            });
            let merged: Vec<u32> = out.into_iter().flatten().collect();
            let mut expect: Vec<u32> = a.iter().chain(&b).copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect);
        }
    }

    #[test]
    fn search_splits_match_partition_merge() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(78);
        let (w, e, u) = (8usize, 5usize, 16usize);
        let total = u * e;
        let (a, b) = sorted_pair(&mut rng, total / 2, total - total / 2);
        let layout = PairLayout::Natural { base: 0, a_total: a.len(), total };
        let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, total);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..e {
                let s = r * u + tid;
                let v = if s < a.len() { a[s] } else { b[s - a.len()] };
                lane.st(s, v);
            }
        });
        let mut found = vec![0usize; u];
        block.phase(PhaseClass::Search, |tid, lane| {
            found[tid] = shared_merge_path(lane, &layout, tid * e);
        });
        let chunks = partition_merge(&a, &b, e);
        for (tid, c) in chunks.iter().enumerate() {
            assert_eq!(found[tid], c.a_begin, "tid={tid}");
        }
    }

    #[test]
    fn gather_merge_is_correct_and_conflict_free() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(79);
        for &(w, e, warps) in &[(8usize, 5usize, 2usize), (32, 15, 2), (9, 6, 2), (32, 16, 2)] {
            let u = w * warps;
            let total = u * e;
            let la = {
                // pick an |A| realizable by merge-path chunks
                rng.gen_range(0..=total)
            };
            let (a, b) = sorted_pair(&mut rng, la, total - la);
            let layout = CfLayout::new(w, e, total, a.len());
            let tile = crate::gather::simulate::permuted_tile(&a, &b, &layout);
            let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, total);
            block.phase(PhaseClass::LoadTile, |tid, lane| {
                for r in 0..e {
                    let s = r * u + tid;
                    lane.st(s, tile[s]);
                }
            });
            // Exact merge-path splits (host-computed oracle; the pipeline
            // uses the in-kernel search, tested separately).
            let chunks = partition_merge(&a, &b, e);
            let splits: Vec<ThreadSplit> = chunks
                .iter()
                .map(|c| ThreadSplit { a_begin: c.a_begin, a_len: c.a_len() })
                .collect();
            let mut out = vec![vec![0u32; e]; u];
            block.phase(PhaseClass::Gather, |tid, lane| {
                gather_merge_from_shared(lane, 0, &layout, tid, splits[tid], &mut out[tid]);
            });
            let merged: Vec<u32> = out.into_iter().flatten().collect();
            let mut expect: Vec<u32> = a.iter().chain(&b).copied().collect();
            expect.sort_unstable();
            assert_eq!(merged, expect, "w={w} E={e}");
            assert_eq!(
                block.profile.phase(PhaseClass::Gather).bank_conflicts(),
                0,
                "w={w} E={e}: gather must be conflict-free"
            );
        }
    }

    #[test]
    fn cf_search_through_permuted_layout_matches_natural() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(80);
        let (w, e, u) = (8usize, 6usize, 16usize); // d = 2: ρ active
        let total = u * e;
        let (a, b) = sorted_pair(&mut rng, total / 2, total / 2);
        let layout = CfLayout::new(w, e, total, a.len());
        let pair = PairLayout::Permuted { base: 0, layout };
        let tile = crate::gather::simulate::permuted_tile(&a, &b, &layout);
        let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, total);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..e {
                lane.st(r * u + tid, tile[r * u + tid]);
            }
        });
        let mut found = vec![0usize; u];
        block.phase(PhaseClass::Search, |tid, lane| {
            found[tid] = shared_merge_path(lane, &pair, tid * e);
        });
        let chunks = partition_merge(&a, &b, e);
        for (tid, c) in chunks.iter().enumerate() {
            assert_eq!(found[tid], c.a_begin, "tid={tid}");
        }
    }

    #[test]
    fn serial_merge_counts_conflicts_on_adversarial_layouts() {
        // All w threads scan the same-aligned columns: the merge phase
        // must report heavy conflicts (this is what Section 4 exploits).
        let (w, e) = (8usize, 4usize);
        let u = w;
        let total = u * e;
        // A holds everything; splits give each thread a full-A scan at
        // w-aligned offsets: a_begin = tid*E, and E | w here, so all
        // threads start in the same bank.
        let a: Vec<u32> = (0..total as u32).collect();
        let layout = PairLayout::Natural { base: 0, a_total: total, total };
        let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, total);
        block.phase(PhaseClass::LoadTile, |tid, lane| {
            for r in 0..e {
                lane.st(r * u + tid, a[r * u + tid]);
            }
        });
        let mut out = vec![vec![0u32; e]; u];
        block.phase(PhaseClass::Merge, |tid, lane| {
            let split = ThreadSplit { a_begin: tid * e, a_len: e };
            serial_merge_from_shared(lane, &layout, split, 0, &mut out[tid]);
        });
        let m = block.profile.phase(PhaseClass::Merge);
        // Every round: 8 threads at stride 4 over 8 banks → gcd(4,8)=4
        // distinct words per bank... they collide heavily.
        assert!(m.bank_conflicts() > 0);
        assert!(m.shared_ld_transactions > m.shared_ld_requests);
    }
}
