//! Standalone merging of two sorted arrays on the simulated GPU.
//!
//! CF-Merge is at heart a *merge* optimization; sorting is just the loop
//! around it. This module exposes the single merge as a public API — the
//! equivalent of `thrust::merge` — so users can merge pre-sorted runs
//! with either strategy and inspect the conflict profile of exactly one
//! pass.

use super::blocksort::MergeStrategy;
use super::key::SortKey;
use super::merge_pass::{merge_pass_block, MergeChunkJob};
use super::pipeline::{KernelReport, SortAlgorithm, SortConfig};
use cfmerge_gpu_sim::profiler::KernelProfile;
use cfmerge_mergepath::partition::partition_merge;
use rayon::prelude::*;

/// Result of a simulated merge.
#[derive(Debug, Clone)]
pub struct MergeRun<K = u32> {
    /// The merged output (`a.len() + b.len()` keys, stable).
    pub output: Vec<K>,
    /// Aggregated profile.
    pub profile: KernelProfile,
    /// Modeled runtime in seconds.
    pub simulated_seconds: f64,
    /// The single merge kernel's report.
    pub kernel: KernelReport,
}

/// Merge two sorted arrays on the simulated GPU with the chosen
/// pipeline's merge kernel.
///
/// Unlike [`super::pipeline::simulate_sort`], inputs need not be
/// tile-aligned: the tail chunk that doesn't fill a block is merged by a
/// partial block (threads predicated off), exactly as a guarded CUDA
/// kernel would.
///
/// ```
/// use cfmerge_core::params::SortParams;
/// use cfmerge_core::sort::{simulate_merge, SortAlgorithm, SortConfig};
///
/// let cfg = SortConfig::with_params(SortParams::new(5, 32));
/// let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
/// let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
/// let run = simulate_merge(&a, &b, SortAlgorithm::CfMerge, &cfg);
/// assert_eq!(run.output, (0..200).collect::<Vec<u32>>());
/// assert_eq!(run.profile.merge_bank_conflicts(), 0);
/// ```
///
/// # Panics
/// Panics if either input is not sorted (debug builds check this), or if
/// the configuration is invalid for the device.
#[must_use]
pub fn simulate_merge<K: SortKey>(
    a: &[K],
    b: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> MergeRun<K> {
    debug_assert!(a.is_sorted(), "input A must be sorted");
    debug_assert!(b.is_sorted(), "input B must be sorted");
    let w = config.device.warp_width as usize;
    let (e, u) = (config.params.e, config.params.u);
    config.params.validate(w);
    if let Err(why) =
        cfmerge_gpu_sim::occupancy::occupancy(&config.device, &config.launch(1).resources)
    {
        panic!("configuration cannot launch on {}: {why}", config.device.name);
    }
    let banks = config.device.bank_model();
    let strategy = match algo {
        SortAlgorithm::ThrustMergesort => MergeStrategy::DirectSerial,
        SortAlgorithm::CfMerge => MergeStrategy::Gather,
    };
    let tile = u * e;
    let total = a.len() + b.len();

    // Pad to whole tiles with sentinels so every block is complete, then
    // truncate (same approach as the sort driver; the sentinels all land
    // in the final blocks).
    let padded = total.div_ceil(tile).max(1) * tile;
    let mut a_pad = a.to_vec();
    let mut b_pad = b.to_vec();
    a_pad.resize(a.len() + (padded - total) / 2, K::MAX_SENTINEL);
    b_pad.resize(b.len() + (padded - total).div_ceil(2), K::MAX_SENTINEL);
    let src: Vec<K> = a_pad.iter().chain(&b_pad).copied().collect();

    let chunks = partition_merge(&a_pad, &b_pad, tile);
    let jobs: Vec<MergeChunkJob> = chunks
        .iter()
        .map(|c| MergeChunkJob {
            a_begin: c.a_begin,
            a_end: c.a_end,
            b_begin: a_pad.len() + c.b_begin,
            b_end: a_pad.len() + c.b_end,
        })
        .collect();

    let mut out = vec![K::default(); padded];
    let profiles: Vec<KernelProfile> = jobs
        .par_iter()
        .zip(out.par_chunks_mut(tile))
        .map(|(job, chunk)| {
            merge_pass_block(banks, u, e, strategy, &src, *job, chunk, config.count_accesses)
        })
        .collect();
    let mut profile = KernelProfile::new();
    for p in &profiles {
        profile.merge(p);
    }
    let blocks = jobs.len() as u64;
    let launch = cfmerge_gpu_sim::timing::LaunchConfig {
        blocks,
        resources: cfmerge_gpu_sim::occupancy::BlockResources {
            threads: u as u32,
            shared_bytes: config.params.shared_bytes(),
            regs_per_thread: cfmerge_gpu_sim::occupancy::mergesort_regs_estimate(e as u32),
        },
    };
    let time = config
        .timing
        .kernel_time(&config.device, &profile.total(), &launch)
        .expect("launchability was validated at entry");
    out.truncate(total);
    MergeRun {
        output: out,
        profile: profile.clone(),
        simulated_seconds: time.seconds,
        kernel: KernelReport { name: "merge".into(), blocks, profile, time },
    }
}

/// Non-panicking variant of [`simulate_merge`]: configuration problems
/// and unsorted inputs come back as a typed
/// [`SortError`](super::error::SortError) instead of a panic (release
/// builds of `simulate_merge` silently accept unsorted inputs; this
/// entry point always checks).
pub fn try_simulate_merge<K: SortKey>(
    a: &[K],
    b: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> Result<MergeRun<K>, super::error::SortError> {
    super::error::validate_sort_config(config)?;
    if !a.is_sorted() {
        return Err(super::error::SortError::InvalidConfig {
            reason: "merge input A is not sorted".into(),
        });
    }
    if !b.is_sorted() {
        return Err(super::error::SortError::InvalidConfig {
            reason: "merge input B is not sorted".into(),
        });
    }
    Ok(simulate_merge(a, b, algo, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SortParams;
    use rand::{Rng, SeedableRng};

    fn cfg() -> SortConfig {
        SortConfig::with_params(SortParams::new(15, 64))
    }

    #[test]
    fn merge_is_correct_for_ragged_sizes() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x3E6E);
        for (la, lb) in [(0usize, 0usize), (1, 0), (0, 1), (100, 33), (960, 960), (1000, 3000)] {
            let mut a: Vec<u32> = (0..la).map(|_| rng.gen_range(0..1_000_000)).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| rng.gen_range(0..1_000_000)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let mut expect: Vec<u32> = a.iter().chain(&b).copied().collect();
            expect.sort_unstable();
            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                let run = simulate_merge(&a, &b, algo, &cfg());
                assert_eq!(run.output, expect, "{algo:?} la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn cf_merge_single_pass_zero_conflicts() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x3E6F);
        let mut a: Vec<u32> = (0..5000).map(|_| rng.gen()).collect();
        let mut b: Vec<u32> = (0..5000).map(|_| rng.gen()).collect();
        a.sort_unstable();
        b.sort_unstable();
        let run = simulate_merge(&a, &b, SortAlgorithm::CfMerge, &cfg());
        assert_eq!(run.profile.merge_bank_conflicts(), 0);
        assert!(run.simulated_seconds > 0.0);
        assert_eq!(run.kernel.name, "merge");
    }

    #[test]
    fn worst_case_pair_hurts_only_the_baseline() {
        let b = crate::worst_case::WorstCaseBuilder::new(32, 15, 64);
        let (av, bv) = b.merge_pair(8);
        let base = simulate_merge(&av, &bv, SortAlgorithm::ThrustMergesort, &cfg());
        let cf = simulate_merge(&av, &bv, SortAlgorithm::CfMerge, &cfg());
        assert_eq!(base.output, cf.output);
        assert!(base.profile.merge_bank_conflicts() > 0);
        assert_eq!(cf.profile.merge_bank_conflicts(), 0);
        assert!(base.simulated_seconds > cf.simulated_seconds);
    }

    #[test]
    fn u64_keys_merge() {
        let a: Vec<u64> = (0u64..1000).map(|i| i * 3).collect();
        let b: Vec<u64> = (0u64..1000).map(|i| i * 3 + 1).collect();
        let run = simulate_merge(&a, &b, SortAlgorithm::CfMerge, &cfg());
        assert!(run.output.is_sorted());
        assert_eq!(run.output.len(), 2000);
    }
}
