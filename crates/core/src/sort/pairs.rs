//! Stable key-value sorting on top of the generic pipelines.
//!
//! Thrust's mergesort is stable and sorts `(key, value)` pairs; the
//! simulated pipelines sort bare keys. Stability interacts with CF-Merge
//! nontrivially: the gather leaves `Bᵢ` *reversed* in registers, so a
//! key-only register network would emit equal `B` keys in reversed
//! order. The standard GPU remedy — and what we implement — is to sort
//! the packed 64-bit words `key · 2³² + original_index`: the index
//! tiebreak makes every comparison strict, which simultaneously restores
//! stability and realizes the value permutation.
//!
//! (The paper sidesteps this by benchmarking 4-byte keys only; this
//! module is the natural library extension a real user would need.)

use super::pipeline::{simulate_sort_keys, SortAlgorithm, SortConfig, SortRun};

/// Result of a stable pair sort.
#[derive(Debug, Clone)]
pub struct PairSortRun {
    /// Sorted keys.
    pub keys: Vec<u32>,
    /// Values, permuted alongside their keys (stable).
    pub values: Vec<u32>,
    /// The underlying packed-u64 pipeline run (profile, timing, …).
    pub run: SortRun<u64>,
}

/// Stable sort-by-key of `(keys[i], values[i])` pairs on the simulated
/// GPU.
///
/// ```
/// use cfmerge_core::params::SortParams;
/// use cfmerge_core::sort::{sort_pairs_stable, SortAlgorithm, SortConfig};
///
/// let cfg = SortConfig::with_params(SortParams::new(5, 32));
/// let keys = [3u32, 1, 3, 2];
/// let values = [0u32, 1, 2, 3]; // original positions
/// let r = sort_pairs_stable(&keys, &values, SortAlgorithm::CfMerge, &cfg);
/// assert_eq!(r.keys, vec![1, 2, 3, 3]);
/// assert_eq!(r.values, vec![1, 3, 0, 2]); // equal keys keep input order
/// ```
///
/// # Panics
/// Panics if the slices' lengths differ or exceed `u32::MAX` (the index
/// tiebreak is packed into 32 bits).
#[must_use]
pub fn sort_pairs_stable(
    keys: &[u32],
    values: &[u32],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> PairSortRun {
    assert_eq!(keys.len(), values.len(), "one value per key");
    assert!(keys.len() <= u32::MAX as usize, "index tiebreak is 32-bit");
    let packed: Vec<u64> =
        keys.iter().enumerate().map(|(i, &k)| (u64::from(k) << 32) | i as u64).collect();
    let run = simulate_sort_keys::<u64>(&packed, algo, config);
    let mut out_keys = Vec::with_capacity(keys.len());
    let mut out_values = Vec::with_capacity(values.len());
    for &p in &run.output {
        out_keys.push((p >> 32) as u32);
        out_values.push(values[(p & 0xFFFF_FFFF) as usize]);
    }
    PairSortRun { keys: out_keys, values: out_values, run }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SortParams;
    use rand::{Rng, SeedableRng};

    fn cfg() -> SortConfig {
        SortConfig::with_params(SortParams::new(5, 32))
    }

    #[test]
    fn pair_sort_is_correct_and_stable() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xABCD);
        for n in [0usize, 1, 100, 1000, 5000] {
            // Few distinct keys → lots of ties to stress stability.
            let keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
            let values: Vec<u32> = (0..n as u32).collect(); // value = original index
            for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                let r = sort_pairs_stable(&keys, &values, algo, &cfg());
                assert!(r.keys.is_sorted(), "{algo:?} n={n}");
                // Pairing preserved:
                for (k, v) in r.keys.iter().zip(&r.values) {
                    assert_eq!(keys[*v as usize], *k);
                }
                // Stability: equal keys keep ascending original indices.
                for w in r.keys.windows(2).zip(r.values.windows(2)) {
                    let (kw, vw) = w;
                    if kw[0] == kw[1] {
                        assert!(vw[0] < vw[1], "{algo:?}: stability violated");
                    }
                }
            }
        }
    }

    #[test]
    fn cf_pair_sort_is_conflict_free_in_merge_phases() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xBEEF);
        let n = 2000;
        let keys: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let values: Vec<u32> = (0..n as u32).collect();
        let r = sort_pairs_stable(&keys, &values, SortAlgorithm::CfMerge, &cfg());
        assert_eq!(r.run.profile.merge_bank_conflicts(), 0);
    }

    #[test]
    fn both_algorithms_agree() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xF00D);
        let n = 3000;
        let keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
        let values: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let a = sort_pairs_stable(&keys, &values, SortAlgorithm::ThrustMergesort, &cfg());
        let b = sort_pairs_stable(&keys, &values, SortAlgorithm::CfMerge, &cfg());
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.values, b.values);
    }

    #[test]
    #[should_panic(expected = "one value per key")]
    fn mismatched_lengths_panic() {
        let _ = sort_pairs_stable(&[1], &[], SortAlgorithm::CfMerge, &cfg());
    }
}
