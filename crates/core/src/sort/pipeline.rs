//! End-to-end pipeline driver: block sort, then `log₂(n/uE)` merge
//! passes, with per-launch profiling and modeled timing.
//!
//! Inputs of any size are padded to a power-of-two number of tiles with
//! `u32::MAX` sentinels (the paper's sweep sizes `n = 2^i·E` are already
//! tile-aligned for its `u`; padding keeps the driver total). Blocks are
//! independent, so each pass fans out with rayon and merges the per-block
//! profiles.

use super::blocksort::{blocksort_block_checked, MergeStrategy};
use super::key::SortKey;
use super::merge_pass::{merge_pass_block_checked, MergeChunkJob};
use crate::params::SortParams;
use cfmerge_gpu_sim::check::{Finding, MemCheck, NoCheck, Sanitizer};
use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::occupancy::{mergesort_regs_estimate, BlockResources};
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};
use cfmerge_gpu_sim::timing::{LaunchConfig, TimeBreakdown, TimingModel};
use cfmerge_gpu_sim::trace::{BlockTracer, KernelTrace, NullTracer, SortTrace, Tracer};
use cfmerge_json::{FromJson, Json, JsonError, ToJson};
use cfmerge_mergepath::diagonal::merge_path_steps;
use cfmerge_mergepath::partition::partition_merge;
use rayon::prelude::*;

/// Which pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgorithm {
    /// The Thrust-style baseline (serial merge in shared memory).
    ThrustMergesort,
    /// CF-Merge (permuted layout + dual subsequence gather).
    CfMerge,
}

impl SortAlgorithm {
    fn strategy(self) -> MergeStrategy {
        match self {
            SortAlgorithm::ThrustMergesort => MergeStrategy::DirectSerial,
            SortAlgorithm::CfMerge => MergeStrategy::Gather,
        }
    }

    /// Label for report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SortAlgorithm::ThrustMergesort => "thrust",
            SortAlgorithm::CfMerge => "cf-merge",
        }
    }
}

/// Full configuration of a simulated sort.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Software parameters `(E, u)`.
    pub params: SortParams,
    /// Simulated device.
    pub device: Device,
    /// Timing-model constants.
    pub timing: TimingModel,
    /// Record every shared/global access (exact conflict counts). Turn
    /// off for correctness-only runs at very large `n`.
    pub count_accesses: bool,
}

impl SortConfig {
    /// The paper's preferred parameters on the RTX 2080 Ti model.
    #[must_use]
    pub fn paper_e15_u512() -> Self {
        Self {
            params: SortParams::e15_u512(),
            device: Device::rtx2080ti(),
            timing: TimingModel::rtx2080ti_like(),
            count_accesses: true,
        }
    }

    /// Thrust's shipped parameters on the RTX 2080 Ti model.
    #[must_use]
    pub fn paper_e17_u256() -> Self {
        Self {
            params: SortParams::e17_u256(),
            device: Device::rtx2080ti(),
            timing: TimingModel::rtx2080ti_like(),
            count_accesses: true,
        }
    }

    /// Same device/timing, different `(E, u)`.
    #[must_use]
    pub fn with_params(params: SortParams) -> Self {
        Self {
            params,
            device: Device::rtx2080ti(),
            timing: TimingModel::rtx2080ti_like(),
            count_accesses: true,
        }
    }

    pub(crate) fn launch(&self, blocks: u64) -> LaunchConfig {
        LaunchConfig {
            blocks,
            resources: BlockResources {
                threads: self.params.u as u32,
                shared_bytes: self.params.shared_bytes(),
                regs_per_thread: mergesort_regs_estimate(self.params.e as u32),
            },
        }
    }
}

/// One priced kernel launch of the pipeline.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name (`blocksort`, `merge-pass-0`, …).
    pub name: String,
    /// Grid size.
    pub blocks: u64,
    /// Aggregated per-phase counters for the launch.
    pub profile: KernelProfile,
    /// Modeled time breakdown.
    pub time: TimeBreakdown,
}

/// Result of a simulated sort.
#[derive(Debug, Clone)]
pub struct SortRun<K = u32> {
    /// The sorted keys (length = input length).
    pub output: Vec<K>,
    /// Aggregated profile over all launches.
    pub profile: KernelProfile,
    /// Total modeled runtime in seconds.
    pub simulated_seconds: f64,
    /// Per-launch detail.
    pub kernels: Vec<KernelReport>,
    /// Input size.
    pub n: usize,
}

impl<K> SortRun<K> {
    /// Throughput in elements/µs — the y-axis of Figures 5 and 6.
    ///
    /// # Panics
    /// Panics if the modeled runtime is non-positive — impossible for a
    /// real run (every launch pays fixed overhead), so a failure here
    /// means the run was constructed by hand with a bogus duration.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        crate::metrics::elements_per_us(self.n, self.simulated_seconds)
            .expect("a simulated run always has positive modeled runtime")
    }

    /// Mean bank conflicts per merge/gather round — the Karsin et al.
    /// statistic.
    #[must_use]
    pub fn conflicts_per_merge_round(&self) -> f64 {
        self.profile.merge_degree_hist.mean_conflicts_per_round()
    }
}

/// A sort run together with its recorded execution trace.
#[derive(Debug, Clone)]
pub struct TracedSortRun<K = u32> {
    /// The run itself: output, profile, modeled timing.
    pub run: SortRun<K>,
    /// The structured trace: per-kernel, per-block timelines with
    /// conflict rounds (export with [`SortTrace::perfetto_json`]).
    pub trace: SortTrace,
}

/// Sort `input` on the simulated GPU with the chosen pipeline.
///
/// # Panics
/// Panics if the configuration is invalid for the device (`u` not a
/// power-of-two multiple of `w`, `E > w`).
#[must_use]
pub fn simulate_sort(input: &[u32], algo: SortAlgorithm, config: &SortConfig) -> SortRun {
    simulate_sort_keys::<u32>(input, algo, config)
}

/// Generic-key variant of [`simulate_sort`]: sort any [`SortKey`] type
/// (`u64` keys back the stable sort-by-key API in [`super::pairs`]).
///
/// # Panics
/// Same conditions as [`simulate_sort`].
#[must_use]
pub fn simulate_sort_keys<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> SortRun<K> {
    simulate_sort_impl(input, algo, config, &|| NullTracer, &|| NoCheck).0
}

/// Non-panicking variant of [`simulate_sort`]: the configuration checks
/// that `simulate_sort` enforces by panicking come back as a typed
/// [`SortError`](super::error::SortError) instead.
pub fn try_simulate_sort(
    input: &[u32],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> Result<SortRun, super::error::SortError> {
    try_simulate_sort_keys::<u32>(input, algo, config)
}

/// Generic-key variant of [`try_simulate_sort`].
pub fn try_simulate_sort_keys<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> Result<SortRun<K>, super::error::SortError> {
    super::error::validate_sort_config(config)?;
    Ok(simulate_sort_keys(input, algo, config))
}

/// [`simulate_sort`] with full structured tracing: every thread block of
/// every launch records its phase timeline and conflicted rounds into a
/// [`SortTrace`] (see `cfmerge_gpu_sim::trace`).
///
/// # Panics
/// Same conditions as [`simulate_sort`].
#[must_use]
pub fn simulate_sort_traced(
    input: &[u32],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> TracedSortRun {
    simulate_sort_keys_traced::<u32>(input, algo, config)
}

/// Generic-key variant of [`simulate_sort_traced`].
///
/// # Panics
/// Same conditions as [`simulate_sort`].
#[must_use]
pub fn simulate_sort_keys_traced<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> TracedSortRun<K> {
    let banks = config.device.bank_model();
    let (run, observers) =
        simulate_sort_impl(input, algo, config, &move || BlockTracer::new(banks), &|| NoCheck);
    let kernels = run
        .kernels
        .iter()
        .zip(observers)
        .map(|(k, blocks)| KernelTrace {
            name: k.name.clone(),
            grid_blocks: k.blocks,
            seconds: k.time.seconds,
            blocks: blocks.into_iter().map(|(t, NoCheck)| t).collect(),
        })
        .collect();
    let trace = SortTrace {
        label: format!("{}/E={},u={}/n={}", algo.label(), config.params.e, config.params.u, run.n),
        num_banks: config.device.warp_width,
        kernels,
    };
    TracedSortRun { run, trace }
}

/// One sanitizer finding, located to the launch and block that raised it.
#[derive(Debug, Clone)]
pub struct KernelFinding {
    /// Kernel launch name (`blocksort`, `merge-pass-0`, …).
    pub kernel: String,
    /// Block index within the launch.
    pub block: usize,
    /// The finding itself (hazard kind, phase, lane, address).
    pub finding: Finding,
}

impl std::fmt::Display for KernelFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} block {}: {}", self.kernel, self.block, self.finding)
    }
}

/// A sort run executed under the [`Sanitizer`]: the run itself plus every
/// hazard finding raised by any block of any launch.
#[derive(Debug, Clone)]
pub struct CheckedSortRun<K = u32> {
    /// The run: output, profile, modeled timing (identical to an
    /// unchecked run unless a finding suppressed a faulty access).
    pub run: SortRun<K>,
    /// All findings, in launch order then block order.
    pub findings: Vec<KernelFinding>,
    /// Findings dropped beyond the per-block cap (see
    /// [`Sanitizer`]); nonzero means `findings` is a truncated view.
    pub dropped: u64,
}

impl<K> CheckedSortRun<K> {
    /// `true` when no block raised any hazard finding.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.dropped == 0
    }

    /// Multi-line forensic report of all findings (empty string if clean).
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}");
        }
        if self.dropped > 0 {
            let _ =
                writeln!(out, "... and {} further findings dropped (per-block cap)", self.dropped);
        }
        out
    }
}

/// [`simulate_sort`] executed under the dynamic [`Sanitizer`]: every
/// shared/global access of every block is checked for data races,
/// out-of-bounds, uninitialized reads, and lock-step divergence. The
/// shipping pipelines are expected to come back clean; see
/// `docs/ANALYSIS.md`.
///
/// # Panics
/// Same conditions as [`simulate_sort`].
#[must_use]
pub fn simulate_sort_checked(
    input: &[u32],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> CheckedSortRun {
    simulate_sort_keys_checked::<u32>(input, algo, config)
}

/// Generic-key variant of [`simulate_sort_checked`].
///
/// # Panics
/// Same conditions as [`simulate_sort`].
#[must_use]
pub fn simulate_sort_keys_checked<K: SortKey>(
    input: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
) -> CheckedSortRun<K> {
    let (run, observers) = simulate_sort_impl(input, algo, config, &|| NullTracer, &Sanitizer::new);
    let mut findings = Vec::new();
    let mut dropped = 0u64;
    for (kernel, blocks) in run.kernels.iter().zip(observers) {
        for (block, (NullTracer, ck)) in blocks.into_iter().enumerate() {
            dropped += ck.dropped;
            findings.extend(ck.into_findings().into_iter().map(|finding| KernelFinding {
                kernel: kernel.name.clone(),
                block,
                finding,
            }));
        }
    }
    CheckedSortRun { run, findings, dropped }
}

/// Shared driver: runs the pipeline, handing each simulated block a fresh
/// tracer from `make_tracer` and a fresh checker from `make_checker`, and
/// returning the per-kernel `(tracer, checker)` sets aligned with
/// `SortRun::kernels`. Monomorphizes to the untraced, unchecked engine
/// when `Tr` is [`NullTracer`] and `Ck` is [`NoCheck`].
fn simulate_sort_impl<K: SortKey, Tr, Ck, F, G>(
    input: &[K],
    algo: SortAlgorithm,
    config: &SortConfig,
    make_tracer: &F,
    make_checker: &G,
) -> (SortRun<K>, Vec<Vec<(Tr, Ck)>>)
where
    Tr: Tracer + Send,
    Ck: MemCheck + Send,
    F: Fn() -> Tr + Sync,
    G: Fn() -> Ck + Sync,
{
    let w = config.device.warp_width as usize;
    let (e, u) = (config.params.e, config.params.u);
    config.params.validate(w);
    assert!(u.is_power_of_two(), "blocksort pairing requires a power-of-two u (got {u})");
    if let Err(why) =
        cfmerge_gpu_sim::occupancy::occupancy(&config.device, &config.launch(1).resources)
    {
        panic!("configuration cannot launch on {}: {why}", config.device.name);
    }
    let banks = config.device.bank_model();
    let strategy = algo.strategy();
    let tile = u * e;
    let n = input.len();
    if n == 0 {
        return (
            SortRun {
                output: Vec::new(),
                profile: KernelProfile::new(),
                simulated_seconds: 0.0,
                kernels: Vec::new(),
                n: 0,
            },
            Vec::new(),
        );
    }

    // Pad to a power-of-two number of tiles.
    let runs = n.div_ceil(tile).next_power_of_two();
    let n_pad = runs * tile;
    let mut src = input.to_vec();
    src.resize(n_pad, K::MAX_SENTINEL);
    let mut dst = vec![K::default(); n_pad];

    let mut kernels: Vec<KernelReport> = Vec::new();
    let mut kernel_tracers: Vec<Vec<(Tr, Ck)>> = Vec::new();

    // ---- Phase 1: block sort ----
    {
        let results: Vec<(KernelProfile, Tr, Ck)> = src
            .par_chunks(tile)
            .zip(dst.par_chunks_mut(tile))
            .enumerate()
            .map(|(t, (s, d))| {
                blocksort_block_checked(
                    banks,
                    u,
                    e,
                    strategy,
                    s,
                    d,
                    t * tile,
                    config.count_accesses,
                    make_tracer(),
                    make_checker(),
                )
            })
            .collect();
        let mut profile = KernelProfile::new();
        let mut tracers = Vec::with_capacity(results.len());
        for (p, t, c) in results {
            profile.merge(&p);
            tracers.push((t, c));
        }
        let launch = config.launch(runs as u64);
        let time = config
            .timing
            .kernel_time(&config.device, &profile.total(), &launch)
            .expect("launchability was validated at pipeline entry");
        kernels.push(KernelReport { name: "blocksort".into(), blocks: runs as u64, profile, time });
        kernel_tracers.push(tracers);
        std::mem::swap(&mut src, &mut dst);
    }

    // ---- Phase 2: merge passes ----
    let mut width = tile;
    let mut pass = 0usize;
    while width < n_pad {
        let pair = 2 * width;
        // Build all block jobs for this pass (host-side partitioning —
        // on the device this is the small "partition kernel", charged
        // below).
        let mut jobs: Vec<MergeChunkJob> = Vec::with_capacity(n_pad / tile);
        let mut search_cost = KernelProfile::new();
        for pair_lo in (0..n_pad).step_by(pair) {
            let a = &src[pair_lo..pair_lo + width];
            let b = &src[pair_lo + width..pair_lo + pair];
            for c in partition_merge(a, b, tile) {
                jobs.push(MergeChunkJob {
                    a_begin: pair_lo + c.a_begin,
                    a_end: pair_lo + c.a_end,
                    b_begin: pair_lo + width + c.b_begin,
                    b_end: pair_lo + width + c.b_end,
                });
            }
            // Partition-kernel accounting: one boundary search per block
            // in the pair, 2 uncoalesced global loads per iteration.
            if config.count_accesses {
                let blocks_in_pair = (pair / tile) as u64;
                let steps = u64::from(merge_path_steps(pair / 2, width, width));
                let s = search_cost.phase_mut(PhaseClass::Search);
                s.global_ld_requests += blocks_in_pair * steps * 2;
                s.global_ld_sectors += blocks_in_pair * steps * 2;
                s.alu_ops += blocks_in_pair * steps * 6;
            }
        }
        let results: Vec<(KernelProfile, Tr, Ck)> = jobs
            .par_iter()
            .zip(dst.par_chunks_mut(tile))
            .map(|(job, chunk)| {
                merge_pass_block_checked(
                    banks,
                    u,
                    e,
                    strategy,
                    &src,
                    *job,
                    chunk,
                    config.count_accesses,
                    make_tracer(),
                    make_checker(),
                )
            })
            .collect();
        let mut profile = search_cost;
        let mut tracers = Vec::with_capacity(results.len());
        for (p, t, c) in results {
            profile.merge(&p);
            tracers.push((t, c));
        }
        let blocks = jobs.len() as u64;
        let launch = config.launch(blocks);
        let time = config
            .timing
            .kernel_time(&config.device, &profile.total(), &launch)
            .expect("launchability was validated at pipeline entry");
        kernels.push(KernelReport { name: format!("merge-pass-{pass}"), blocks, profile, time });
        kernel_tracers.push(tracers);
        std::mem::swap(&mut src, &mut dst);
        width = pair;
        pass += 1;
    }

    src.truncate(n);
    let mut profile = KernelProfile::new();
    let mut seconds = 0.0;
    for k in &kernels {
        profile.merge(&k.profile);
        seconds += k.time.seconds;
    }
    (SortRun { output: src, profile, simulated_seconds: seconds, kernels, n }, kernel_tracers)
}

impl ToJson for KernelReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("blocks", Json::from(self.blocks)),
            ("profile", self.profile.to_json()),
            ("time", self.time.to_json()),
        ])
    }
}

impl FromJson for KernelReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: v.field("name")?,
            blocks: v.field("blocks")?,
            profile: v.field("profile")?,
            time: v.field("time")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::InputSpec;

    fn cfg(e: usize, u: usize) -> SortConfig {
        SortConfig::with_params(SortParams::new(e, u))
    }

    #[test]
    fn sorts_correctly_all_shapes_and_algorithms() {
        for spec in [
            InputSpec::UniformRandom { seed: 1 },
            InputSpec::Sorted,
            InputSpec::Reversed,
            InputSpec::FewDistinct { seed: 2, distinct: 5 },
            InputSpec::NearlySorted { seed: 3, swaps: 50 },
        ] {
            for n in [1usize, 100, 7680, 7681, 30720, 100_000] {
                let input = spec.generate(n);
                for algo in [SortAlgorithm::ThrustMergesort, SortAlgorithm::CfMerge] {
                    let c = cfg(15, 512);
                    let run = simulate_sort(&input, algo, &c);
                    let mut expect = input.clone();
                    expect.sort_unstable();
                    assert_eq!(run.output, expect, "{} n={n} {:?}", spec.label(), algo);
                    assert_eq!(run.n, n);
                }
            }
        }
    }

    #[test]
    fn cf_merge_has_zero_merge_conflicts_end_to_end() {
        // Coprime E (the variant the paper implements): zero conflicts in
        // the gather across the whole sort, block sort included.
        for (e, u) in [(15usize, 512usize), (17, 256)] {
            let input = InputSpec::UniformRandom { seed: 9 }.generate(4 * e * u);
            let run = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg(e, u));
            assert_eq!(run.profile.merge_bank_conflicts(), 0, "E={e} u={u}");
            assert!(run.output.is_sorted());
        }
    }

    #[test]
    fn cf_merge_noncoprime_global_passes_are_conflict_free() {
        // For d > 1 the full ρ layout applies to the global merge passes
        // (the block sort's small pairs use the reversal-only layout and
        // may conflict — see DESIGN.md). The per-kernel reports let us
        // check exactly that.
        let (e, u) = (16usize, 256usize);
        let input = InputSpec::UniformRandom { seed: 10 }.generate(4 * e * u);
        let run = simulate_sort(&input, SortAlgorithm::CfMerge, &cfg(e, u));
        assert!(run.output.is_sorted());
        for k in run.kernels.iter().filter(|k| k.name.starts_with("merge-pass")) {
            assert_eq!(
                k.profile.merge_bank_conflicts(),
                0,
                "{}: global-pass gather must be conflict-free even at E=16",
                k.name
            );
        }
    }

    #[test]
    fn thrust_random_has_small_conflicts_per_round() {
        // Karsin et al.: 2–3 conflicts per merge step on random inputs.
        let c = cfg(15, 512);
        let input = InputSpec::UniformRandom { seed: 4 }.generate(8 * 7680);
        let run = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &c);
        let cpr = run.conflicts_per_merge_round();
        assert!(cpr > 0.5 && cpr < 6.0, "conflicts/round = {cpr}");
    }

    #[test]
    fn worst_case_inflates_thrust_but_not_cf() {
        let c = cfg(15, 512);
        let n = 8 * 7680;
        let worst = InputSpec::WorstCase { w: 32, e: 15, u: 512 }.generate(n);
        let random = InputSpec::UniformRandom { seed: 5 }.generate(n);

        let t_worst = simulate_sort(&worst, SortAlgorithm::ThrustMergesort, &c);
        let t_rand = simulate_sort(&random, SortAlgorithm::ThrustMergesort, &c);
        let cf_worst = simulate_sort(&worst, SortAlgorithm::CfMerge, &c);

        assert!(t_worst.output.is_sorted());
        let wc = t_worst.profile.phase(PhaseClass::Merge).bank_conflicts();
        let rc = t_rand.profile.phase(PhaseClass::Merge).bank_conflicts();
        assert!(wc > 2 * rc.max(1), "worst-case Merge conflicts {wc} vs random {rc}");
        assert_eq!(cf_worst.profile.merge_bank_conflicts(), 0);
        assert!(
            t_worst.simulated_seconds > t_rand.simulated_seconds,
            "worst case must be slower for the baseline"
        );
        assert!(
            cf_worst.simulated_seconds < t_worst.simulated_seconds,
            "CF must beat the baseline on worst-case inputs"
        );
    }

    #[test]
    fn kernel_reports_cover_all_passes() {
        let c = cfg(15, 512);
        let input = InputSpec::UniformRandom { seed: 6 }.generate(8 * 7680);
        let run = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &c);
        // 8 tiles → blocksort + 3 merge passes.
        assert_eq!(run.kernels.len(), 4);
        assert_eq!(run.kernels[0].name, "blocksort");
        assert_eq!(run.kernels[3].name, "merge-pass-2");
        assert!(run.simulated_seconds > 0.0);
        assert!(run.throughput() > 0.0);
    }

    #[test]
    fn empty_input() {
        let run = simulate_sort(&[], SortAlgorithm::CfMerge, &cfg(15, 512));
        assert!(run.output.is_empty());
        assert_eq!(run.simulated_seconds, 0.0);
    }

    #[test]
    fn counting_off_matches_output() {
        let input = InputSpec::UniformRandom { seed: 7 }.generate(2 * 7680);
        let mut c = cfg(15, 512);
        let with = simulate_sort(&input, SortAlgorithm::CfMerge, &c);
        c.count_accesses = false;
        let without = simulate_sort(&input, SortAlgorithm::CfMerge, &c);
        assert_eq!(with.output, without.output);
        assert_eq!(without.profile.total().shared_requests(), 0);
    }
}
