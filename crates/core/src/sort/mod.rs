//! The two mergesort pipelines, end to end on the simulator.
//!
//! Both pipelines share the classical Thrust/moderngpu structure:
//!
//! 1. **Block sort** ([`blocksort`]): each block loads a tile of `u·E`
//!    keys, every thread sorts `E` keys in registers with an odd-even
//!    transposition network, then `log₂ u` rounds of intra-block
//!    merge-path merges produce a sorted tile.
//! 2. **Global merge passes** ([`merge_pass`]): `log₂(n / uE)` passes;
//!    each pass pairs sorted runs, partitions every pair into `u·E`-output
//!    chunks by merge path in global memory, and each block merges its
//!    chunk through shared memory.
//!
//! The pipelines differ *only* in how a thread moves its `(Aᵢ, Bᵢ)` out
//! of shared memory (see [`kernels`]): the baseline's data-dependent
//! serial merge versus CF-Merge's dual subsequence gather + register
//! network. [`pipeline::simulate_sort`] drives either, returning the
//! sorted output, exact per-phase profile, and modeled runtime.

pub mod blocksort;
pub mod error;
pub mod kernels;
pub mod key;
pub mod merge_api;
pub mod merge_pass;
pub mod pairs;
pub mod pipeline;

pub use error::{validate_sort_config, Degradation, SortError};
pub use key::{simulate_sort_f32, SortKey};
pub use merge_api::{simulate_merge, try_simulate_merge, MergeRun};
pub use pairs::{sort_pairs_stable, PairSortRun};
pub use pipeline::{
    simulate_sort, simulate_sort_checked, simulate_sort_keys, simulate_sort_keys_checked,
    simulate_sort_keys_traced, simulate_sort_traced, try_simulate_sort, try_simulate_sort_keys,
    CheckedSortRun, KernelFinding, KernelReport, SortAlgorithm, SortConfig, SortRun, TracedSortRun,
};
