//! The global merge-pass kernel: one block merges one `u·E`-output chunk
//! of a pair of sorted runs through shared memory.
//!
//! Baseline: load the chunk's `A` and `B` parts contiguously into shared
//! memory, binary-search per-thread splits, serial-merge in shared
//! (bank-conflict-prone), stage results through shared, store coalesced.
//!
//! CF-Merge: identical structure, but the tile is written into the
//! permuted layout `ρ(A ∪ π(B))` **during the load** (same traffic), the
//! searches run through the permuted index maps, and the serial merge is
//! replaced by the conflict-free gather + register network.

use super::blocksort::MergeStrategy;
use super::kernels::{
    clamped_split, gather_merge_from_shared, serial_merge_from_shared, shared_merge_path,
    PairLayout,
};
use crate::gather::layout::CfLayout;
use crate::gather::schedule::ThreadSplit;
use crate::sort::key::SortKey;
use cfmerge_gpu_sim::banks::BankModel;
use cfmerge_gpu_sim::block::BlockSim;
use cfmerge_gpu_sim::check::{MemCheck, NoCheck};
use cfmerge_gpu_sim::fault::{FaultInjector, NoFaults};
use cfmerge_gpu_sim::profiler::{KernelProfile, PhaseClass};
use cfmerge_gpu_sim::trace::{NullTracer, Tracer};

/// One block's work item in a merge pass: absolute element ranges in the
/// source buffer for its `A` and `B` parts, and the absolute output base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeChunkJob {
    /// Start of the block's `A` slice in the source buffer.
    pub a_begin: usize,
    /// End of the `A` slice.
    pub a_end: usize,
    /// Start of the block's `B` slice.
    pub b_begin: usize,
    /// End of the `B` slice.
    pub b_end: usize,
}

impl MergeChunkJob {
    /// Elements taken from `A`.
    #[must_use]
    pub fn a_len(&self) -> usize {
        self.a_end - self.a_begin
    }

    /// Total outputs (`= u·E` for complete blocks).
    #[must_use]
    pub fn total(&self) -> usize {
        self.a_len() + (self.b_end - self.b_begin)
    }
}

/// Run one merge-pass block: reads `src[job ranges]`, writes the merged
/// chunk to `dst_chunk` (the block's disjoint output window). Returns the
/// block's profile.
///
/// # Panics
/// Panics if the job's total is not exactly `u·E` or `u` is not a
/// power-of-two multiple of the warp width.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn merge_pass_block<K: SortKey>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src: &[K],
    job: MergeChunkJob,
    dst_chunk: &mut [K],
    count_accesses: bool,
) -> KernelProfile {
    merge_pass_block_traced(banks, u, e, strategy, src, job, dst_chunk, count_accesses, NullTracer)
        .0
}

/// [`merge_pass_block`] observed by a [`Tracer`]: identical execution,
/// with every phase and warp round reported to `tracer`, which is
/// returned alongside the profile.
///
/// # Panics
/// Same conditions as [`merge_pass_block`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn merge_pass_block_traced<K: SortKey, Tr: Tracer>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src: &[K],
    job: MergeChunkJob,
    dst_chunk: &mut [K],
    count_accesses: bool,
    tracer: Tr,
) -> (KernelProfile, Tr) {
    let (profile, tracer, NoCheck) = merge_pass_block_checked(
        banks,
        u,
        e,
        strategy,
        src,
        job,
        dst_chunk,
        count_accesses,
        tracer,
        NoCheck,
    );
    (profile, tracer)
}

/// [`merge_pass_block`] observed by both a [`Tracer`] and a [`MemCheck`]
/// checker (e.g. the [`Sanitizer`](cfmerge_gpu_sim::Sanitizer)): identical
/// execution, with every memory access additionally routed through
/// `checker`, which is returned alongside the profile and tracer.
///
/// # Panics
/// Same conditions as [`merge_pass_block`].
#[must_use]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // kernel signature mirrors the CUDA launch; loops index parallel register arrays
pub fn merge_pass_block_checked<K: SortKey, Tr: Tracer, Ck: MemCheck>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src: &[K],
    job: MergeChunkJob,
    dst_chunk: &mut [K],
    count_accesses: bool,
    tracer: Tr,
    checker: Ck,
) -> (KernelProfile, Tr, Ck) {
    let (profile, tracer, checker, NoFaults) = merge_pass_block_faulty(
        banks,
        u,
        e,
        strategy,
        src,
        job,
        dst_chunk,
        count_accesses,
        tracer,
        checker,
        NoFaults,
    );
    (profile, tracer, checker)
}

/// [`merge_pass_block`] corrupted by a [`FaultInjector`] (see
/// [`cfmerge_gpu_sim::fault`]) in addition to the tracer and checker
/// hooks. With [`NoFaults`] this *is* [`merge_pass_block_checked`] —
/// bit-identical execution. With an active injector, scheduled bit-flips,
/// stuck banks, and lane drop-outs corrupt the chunk; corrupted
/// merge-path search results are clamped into geometric bounds so
/// corruption always surfaces as wrong output data — detectable by
/// verification — never as a host-side panic.
///
/// # Panics
/// Same conditions as [`merge_pass_block`].
#[must_use]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // kernel signature mirrors the CUDA launch; loops index parallel register arrays
pub fn merge_pass_block_faulty<K: SortKey, Tr: Tracer, Ck: MemCheck, Fi: FaultInjector>(
    banks: BankModel,
    u: usize,
    e: usize,
    strategy: MergeStrategy,
    src: &[K],
    job: MergeChunkJob,
    dst_chunk: &mut [K],
    count_accesses: bool,
    tracer: Tr,
    checker: Ck,
    injector: Fi,
) -> (KernelProfile, Tr, Ck, Fi) {
    let w = banks.num_banks as usize;
    assert!(u.is_multiple_of(w), "u={u} must be a multiple of w={w}");
    let tile = u * e;
    assert_eq!(job.total(), tile, "merge chunks must be complete tiles");
    assert_eq!(dst_chunk.len(), tile);
    let a_len = job.a_len();

    let mut block =
        BlockSim::<K, Tr, Ck, Fi>::with_faults(banks, u, tile, tracer, checker, injector);
    block.set_counting(count_accesses);

    let layout = match strategy {
        MergeStrategy::DirectSerial => PairLayout::Natural { base: 0, a_total: a_len, total: tile },
        MergeStrategy::Gather => {
            PairLayout::Permuted { base: 0, layout: CfLayout::new(w, e, tile, a_len) }
        }
    };

    // 1. Coalesced load, permuting on the fly for CF (identical traffic:
    //    the reorder only changes *shared* write addresses).
    block.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..e {
            let s = r * u + tid;
            let (gidx, slot) = if s < a_len {
                (job.a_begin + s, layout.a_slot(s))
            } else {
                (job.b_begin + (s - a_len), layout.b_slot(s - a_len))
            };
            let v = lane.ld_global(src, gidx);
            lane.alu(3);
            lane.st(slot, v);
        }
    });

    // 2. Per-thread merge-path splits.
    let mut splits = vec![ThreadSplit { a_begin: 0, a_len: 0 }; u];
    {
        let mut a_begin = vec![0usize; u];
        block.phase(PhaseClass::Search, |tid, lane| {
            a_begin[tid] = shared_merge_path(lane, &layout, tid * e);
        });
        for tid in 0..u {
            let next = if tid + 1 < u { a_begin[tid + 1] } else { a_len };
            splits[tid] = clamped_split(a_begin[tid], next, tid * e, e, a_len, tile - a_len);
        }
    }

    // 3. Move to registers and merge.
    let mut regs = vec![vec![K::default(); e]; u];
    match strategy {
        MergeStrategy::DirectSerial => {
            block.phase(PhaseClass::Merge, |tid, lane| {
                let b_begin = tid * e - splits[tid].a_begin;
                serial_merge_from_shared(lane, &layout, splits[tid], b_begin, &mut regs[tid]);
            });
        }
        MergeStrategy::Gather => {
            let cf = match layout {
                PairLayout::Permuted { layout, .. } => layout,
                PairLayout::Natural { .. } => unreachable!(),
            };
            block.phase(PhaseClass::Gather, |tid, lane| {
                gather_merge_from_shared(lane, 0, &cf, tid, splits[tid], &mut regs[tid]);
            });
        }
    }

    // 4. Stage through shared (rank layout), then coalesced store.
    block.phase(PhaseClass::StoreTile, |tid, lane| {
        for m in 0..e {
            lane.st(tid * e + m, regs[tid][m]);
        }
    });
    block.phase(PhaseClass::StoreTile, |tid, lane| {
        for r in 0..e {
            let s = r * u + tid;
            let v = lane.ld(s);
            lane.st_global(dst_chunk, s, v);
            lane.alu(2);
        }
    });

    block.finish_faulty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfmerge_mergepath::partition::partition_merge;
    use rand::{Rng, SeedableRng};

    fn merge_runs(
        u: usize,
        e: usize,
        w: u32,
        strategy: MergeStrategy,
        a: &[u32],
        b: &[u32],
    ) -> (Vec<u32>, KernelProfile) {
        let tile = u * e;
        let src: Vec<u32> = a.iter().chain(b).copied().collect();
        let chunks = partition_merge(a, b, tile);
        let mut out = vec![0u32; src.len()];
        let mut profile = KernelProfile::new();
        for (i, c) in chunks.iter().enumerate() {
            let job = MergeChunkJob {
                a_begin: c.a_begin,
                a_end: c.a_end,
                b_begin: a.len() + c.b_begin,
                b_end: a.len() + c.b_end,
            };
            let p = merge_pass_block(
                BankModel::new(w),
                u,
                e,
                strategy,
                &src,
                job,
                &mut out[i * tile..(i + 1) * tile],
                true,
            );
            profile.merge(&p);
        }
        (out, profile)
    }

    #[test]
    fn merge_pass_is_correct_both_strategies() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5150);
        for &(u, e, w) in &[(32usize, 5usize, 32u32), (64, 15, 32), (64, 17, 32), (64, 16, 32)] {
            let tile = u * e;
            for blocks in [2usize, 4] {
                let half = blocks * tile / 2;
                let mut a: Vec<u32> = (0..half).map(|_| rng.gen_range(0..1_000_000)).collect();
                let mut b: Vec<u32> = (0..half).map(|_| rng.gen_range(0..1_000_000)).collect();
                a.sort_unstable();
                b.sort_unstable();
                for strategy in [MergeStrategy::DirectSerial, MergeStrategy::Gather] {
                    let (out, _) = merge_runs(u, e, w, strategy, &a, &b);
                    let mut expect: Vec<u32> = a.iter().chain(&b).copied().collect();
                    expect.sort_unstable();
                    assert_eq!(out, expect, "u={u} E={e} {strategy:?}");
                }
            }
        }
    }

    #[test]
    fn cf_merge_pass_has_zero_merge_and_gather_conflicts() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5151);
        for &(u, e) in &[(64usize, 15usize), (64, 17), (64, 16), (64, 24)] {
            let tile = u * e;
            let half = 2 * tile;
            let mut a: Vec<u32> = (0..half).map(|_| rng.gen_range(0..1_000_000)).collect();
            let mut b: Vec<u32> = (0..half).map(|_| rng.gen_range(0..1_000_000)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let (_, profile) = merge_runs(u, e, 32, MergeStrategy::Gather, &a, &b);
            assert_eq!(profile.merge_bank_conflicts(), 0, "u={u} E={e}");
            // The permuting load is fully conflict-free for coprime E
            // (reversal keeps unit stride). For d > 1, only the single
            // round per block that straddles the A/B boundary can
            // conflict (different ρ shifts meet); a real kernel's
            // divergent branch would split it into two transactions, so
            // we bound it by w−1 per block.
            let load_conf = profile.phase(PhaseClass::LoadTile).bank_conflicts();
            let d = cfmerge_numtheory::gcd(32, e as u64);
            if d == 1 {
                assert_eq!(load_conf, 0, "u={u} E={e}");
            } else {
                let blocks = 4u64; // 4 tiles in this test
                assert!(load_conf <= blocks * 31, "u={u} E={e}: load conflicts {load_conf}");
            }
        }
    }

    #[test]
    fn baseline_merge_pass_conflicts_on_worst_case_pairs() {
        // The constructed pair must produce far more Merge-phase
        // conflicts than a random pair of the same size.
        let (u, e, w) = (64usize, 15usize, 32u32);
        let builder = crate::worst_case::WorstCaseBuilder::new(w as usize, e, u);
        let warps = 2 * u / (w as usize) * 2; // two blocks' worth, even
        let (aw, bw) = builder.merge_pair(warps);
        let (_, worst) = merge_runs(u, e, w, MergeStrategy::DirectSerial, &aw, &bw);

        let mut rng = rand::rngs::SmallRng::seed_from_u64(5152);
        let mut ar: Vec<u32> = (0..aw.len()).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut br: Vec<u32> = (0..bw.len()).map(|_| rng.gen_range(0..1_000_000)).collect();
        ar.sort_unstable();
        br.sort_unstable();
        let (_, random) = merge_runs(u, e, w, MergeStrategy::DirectSerial, &ar, &br);

        let wc = worst.phase(PhaseClass::Merge).bank_conflicts();
        let rc = random.phase(PhaseClass::Merge).bank_conflicts();
        assert!(wc > 3 * rc.max(1), "worst {wc} vs random {rc}");

        // CF on the same worst-case input: still zero.
        let (_, cf) = merge_runs(u, e, w, MergeStrategy::Gather, &aw, &bw);
        assert_eq!(cf.merge_bank_conflicts(), 0);
    }

    #[test]
    fn global_traffic_is_identical_across_strategies() {
        // CF's permutation happens in shared addressing only; global
        // sectors must match the baseline exactly.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5153);
        let (u, e) = (64usize, 15usize);
        let tile = u * e;
        let mut a: Vec<u32> = (0..tile).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut b: Vec<u32> = (0..tile).map(|_| rng.gen_range(0..1_000_000)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let (_, base) = merge_runs(u, e, 32, MergeStrategy::DirectSerial, &a, &b);
        let (_, cf) = merge_runs(u, e, 32, MergeStrategy::Gather, &a, &b);
        assert_eq!(base.total().global_ld_sectors, cf.total().global_ld_sectors);
        assert_eq!(base.total().global_st_sectors, cf.total().global_st_sectors);
    }
}
