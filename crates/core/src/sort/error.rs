//! Typed error and degradation taxonomy for the sort pipelines.
//!
//! PR 2 converted `occupancy()`/`kernel_time()` to `Result`; this module
//! finishes the job for the user-reachable pipeline entry points. A
//! caller that can react to failure uses [`try_simulate_sort`]
//! (`crate::sort::pipeline::try_simulate_sort`) and the recovery driver
//! (`crate::recovery`), which return [`SortError`] instead of panicking;
//! [`Degradation`] describes the non-fatal compromises the recovery
//! driver makes (and always reports — never silently).

use crate::sort::pipeline::{SortAlgorithm, SortConfig};
use crate::verify::VerifyFailure;
use cfmerge_json::{Json, ToJson};

/// Why a sort could not produce a verified result.
#[derive(Debug, Clone, PartialEq)]
pub enum SortError {
    /// The `(E, u)` configuration violates the model's standing
    /// assumptions (`u` not a positive multiple of `w`, `E > w`, `u` not
    /// a power of two).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The configuration's resource footprint cannot launch on the
    /// device (occupancy calculator verdict).
    Unlaunchable {
        /// Device name.
        device: String,
        /// The occupancy calculator's reason.
        why: &'static str,
    },
    /// A block kept failing verification after every permitted retry —
    /// and, if fallback was allowed, failed on the fallback pipeline too
    /// (a permanent hardware fault in the model).
    UnrecoverableFault {
        /// Kernel launch name (`blocksort`, `merge-pass-0`, …).
        kernel: String,
        /// Block index within the launch.
        block: usize,
        /// Executions attempted for this block (first try + retries).
        attempts: u32,
        /// The verification failure observed on the last attempt.
        failure: VerifyFailure,
    },
    /// The job finished but its modeled time (including retries and
    /// backoff) exceeded the caller's deadline.
    DeadlineExceeded {
        /// Deadline in modeled seconds.
        deadline_s: f64,
        /// Modeled seconds actually needed.
        needed_s: f64,
    },
    /// The job was cancelled before it ran.
    Cancelled,
    /// Admission control rejected the job outright: the service's bounded
    /// queue was full and the shed policy chose not to evict anything.
    Overloaded {
        /// Queue capacity that was exhausted.
        capacity: usize,
    },
    /// Admission control shed this job to protect the rest of the queue
    /// (evicted as the largest, or deadline-unreachable given the queue's
    /// modeled cost). Shed jobs never execute — not even partially.
    Shed {
        /// The shed policy that fired (`reject-largest`,
        /// `deadline-aware`).
        policy: &'static str,
        /// Why this particular job was chosen.
        reason: String,
    },
    /// The submitted deadline is not a usable modeled time (negative,
    /// NaN, or infinite) — rejected at submission instead of underflowing
    /// deadline arithmetic at t = 0.
    InvalidDeadline {
        /// The deadline as submitted.
        deadline_s: f64,
    },
    /// The run was interrupted after a completed merge pass (the modeled
    /// kill in a chaos kill-and-resume scenario). The checkpoint carries
    /// everything needed to resume without redoing verified passes.
    Interrupted {
        /// Merge passes completed before the interrupt (0 = interrupted
        /// right after the block sort).
        after_pass: usize,
        /// Verified state to hand to `resume_sort_robust`.
        checkpoint: Box<crate::resilience::checkpoint::SortCheckpoint>,
    },
    /// A checkpoint failed validation on resume (version skew, shape
    /// mismatch, corrupted state, or checksum mismatch).
    CheckpointInvalid {
        /// Human-readable reason.
        reason: String,
    },
    /// The whole simulated device holding the job was lost and the
    /// cluster had no failover path (migration disabled, or every device
    /// permanently down). Distinct from [`SortError::Interrupted`]: no
    /// usable continuation exists.
    DeviceLost {
        /// Index of the lost device in the cluster.
        device: usize,
        /// What was lost with it.
        reason: String,
    },
    /// Checkpoint migration off a lost device was attempted but could
    /// not complete (no surviving compatible device, or the per-job
    /// migration cap was exhausted).
    MigrationFailed {
        /// Device the job was running on when it was interrupted.
        from_device: usize,
        /// Why no migration target worked.
        reason: String,
    },
    /// The tuning ladder had no certified launch configuration for the
    /// request, so the service failed closed rather than run an
    /// uncertified config (no ladder for the pipeline/device, an empty
    /// ladder, a corrupt table, or every rung's breaker open).
    Uncertified {
        /// Pipeline label the job asked for.
        algo: String,
        /// Device the service runs on.
        device: String,
        /// Why the ladder had nothing certified to offer.
        why: String,
    },
}

impl std::fmt::Display for SortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SortError::Unlaunchable { device, why } => {
                write!(f, "configuration cannot launch on {device}: {why}")
            }
            SortError::UnrecoverableFault { kernel, block, attempts, failure } => write!(
                f,
                "unrecoverable fault: {kernel} block {block} failed verification on all \
                 {attempts} attempts (last: {failure})"
            ),
            SortError::DeadlineExceeded { deadline_s, needed_s } => {
                write!(f, "deadline exceeded: needed {needed_s:.6}s > deadline {deadline_s:.6}s")
            }
            SortError::Cancelled => write!(f, "job cancelled"),
            SortError::Overloaded { capacity } => {
                write!(f, "service overloaded: queue at capacity {capacity}")
            }
            SortError::Shed { policy, reason } => {
                write!(f, "job shed by {policy} policy: {reason}")
            }
            SortError::InvalidDeadline { deadline_s } => {
                write!(f, "invalid deadline: {deadline_s} modeled seconds")
            }
            SortError::Interrupted { after_pass, .. } => {
                write!(f, "run interrupted after merge pass {after_pass}; checkpoint available")
            }
            SortError::CheckpointInvalid { reason } => {
                write!(f, "checkpoint failed validation: {reason}")
            }
            SortError::DeviceLost { device, reason } => {
                write!(f, "device {device} lost: {reason}")
            }
            SortError::MigrationFailed { from_device, reason } => {
                write!(f, "migration off device {from_device} failed: {reason}")
            }
            SortError::Uncertified { algo, device, why } => {
                write!(f, "no certified launch config for {algo} on {device}: {why}")
            }
        }
    }
}

impl std::error::Error for SortError {}

impl ToJson for SortError {
    fn to_json(&self) -> Json {
        match self {
            SortError::InvalidConfig { reason } => Json::obj([
                ("kind", Json::from("invalid-config")),
                ("reason", Json::from(reason.as_str())),
            ]),
            SortError::Unlaunchable { device, why } => Json::obj([
                ("kind", Json::from("unlaunchable")),
                ("device", Json::from(device.as_str())),
                ("why", Json::from(*why)),
            ]),
            SortError::UnrecoverableFault { kernel, block, attempts, failure } => Json::obj([
                ("kind", Json::from("unrecoverable-fault")),
                ("kernel", Json::from(kernel.as_str())),
                ("block", Json::from(*block)),
                ("attempts", Json::from(*attempts)),
                ("failure", Json::from(failure.to_string().as_str())),
            ]),
            SortError::DeadlineExceeded { deadline_s, needed_s } => Json::obj([
                ("kind", Json::from("deadline-exceeded")),
                ("deadline_s", Json::from(*deadline_s)),
                ("needed_s", Json::from(*needed_s)),
            ]),
            SortError::Cancelled => Json::obj([("kind", Json::from("cancelled"))]),
            SortError::Overloaded { capacity } => {
                Json::obj([("kind", Json::from("overloaded")), ("capacity", Json::from(*capacity))])
            }
            SortError::Shed { policy, reason } => Json::obj([
                ("kind", Json::from("shed")),
                ("policy", Json::from(*policy)),
                ("reason", Json::from(reason.as_str())),
            ]),
            SortError::InvalidDeadline { deadline_s } => Json::obj([
                ("kind", Json::from("invalid-deadline")),
                ("deadline_s", Json::from(*deadline_s)),
            ]),
            SortError::Interrupted { after_pass, checkpoint } => Json::obj([
                ("kind", Json::from("interrupted")),
                ("after_pass", Json::from(*after_pass)),
                ("checkpoint", checkpoint.to_json()),
            ]),
            SortError::CheckpointInvalid { reason } => Json::obj([
                ("kind", Json::from("checkpoint-invalid")),
                ("reason", Json::from(reason.as_str())),
            ]),
            SortError::DeviceLost { device, reason } => Json::obj([
                ("kind", Json::from("device-lost")),
                ("device", Json::from(*device)),
                ("reason", Json::from(reason.as_str())),
            ]),
            SortError::MigrationFailed { from_device, reason } => Json::obj([
                ("kind", Json::from("migration-failed")),
                ("from_device", Json::from(*from_device)),
                ("reason", Json::from(reason.as_str())),
            ]),
            SortError::Uncertified { algo, device, why } => Json::obj([
                ("kind", Json::from("uncertified")),
                ("algo", Json::from(algo.as_str())),
                ("device", Json::from(device.as_str())),
                ("why", Json::from(why.as_str())),
            ]),
        }
    }
}

/// A non-fatal compromise the recovery driver made to complete a job.
/// Degradations are always reported alongside the result — never applied
/// silently.
#[derive(Debug, Clone, PartialEq)]
pub enum Degradation {
    /// The requested pipeline was abandoned for the fallback pipeline.
    Fallback {
        /// Pipeline the caller asked for.
        from: SortAlgorithm,
        /// Pipeline that produced the result.
        to: SortAlgorithm,
        /// Why the driver degraded.
        reason: String,
    },
    /// The requested `(E, u)` could not launch; the fallback ran with
    /// substitute parameters.
    ParamsSubstituted {
        /// Requested `(E, u)`.
        from: (usize, usize),
        /// Parameters actually used.
        to: (usize, usize),
    },
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::Fallback { from, to, reason } => {
                write!(f, "fell back from {} to {}: {reason}", from.label(), to.label())
            }
            Degradation::ParamsSubstituted { from, to } => write!(
                f,
                "substituted parameters (E={}, u={}) for requested (E={}, u={})",
                to.0, to.1, from.0, from.1
            ),
        }
    }
}

impl ToJson for Degradation {
    fn to_json(&self) -> Json {
        match self {
            Degradation::Fallback { from, to, reason } => Json::obj([
                ("kind", Json::from("fallback")),
                ("from", Json::from(from.label())),
                ("to", Json::from(to.label())),
                ("reason", Json::from(reason.as_str())),
            ]),
            Degradation::ParamsSubstituted { from, to } => Json::obj([
                ("kind", Json::from("params-substituted")),
                ("from_e", Json::from(from.0)),
                ("from_u", Json::from(from.1)),
                ("to_e", Json::from(to.0)),
                ("to_u", Json::from(to.1)),
            ]),
        }
    }
}

/// Typed version of the pipeline entry checks that
/// `simulate_sort`/`simulate_merge` enforce by panicking: the model's
/// standing `(E, u, w)` assumptions plus device launchability.
pub fn validate_sort_config(config: &SortConfig) -> Result<(), SortError> {
    let w = config.device.warp_width as usize;
    let (e, u) = (config.params.e, config.params.u);
    if w == 0 || !u.is_multiple_of(w) {
        return Err(SortError::InvalidConfig {
            reason: format!("u={u} must be a positive multiple of w={w}"),
        });
    }
    if e == 0 || e > w {
        return Err(SortError::InvalidConfig {
            reason: format!("E={e} must satisfy 1 ≤ E ≤ w={w}"),
        });
    }
    if !u.is_power_of_two() {
        return Err(SortError::InvalidConfig {
            reason: format!("blocksort pairing requires a power-of-two u (got {u})"),
        });
    }
    if let Err(why) =
        cfmerge_gpu_sim::occupancy::occupancy(&config.device, &config.launch(1).resources)
    {
        return Err(SortError::Unlaunchable { device: config.device.name.clone(), why });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SortParams;

    #[test]
    fn valid_presets_pass() {
        assert_eq!(validate_sort_config(&SortConfig::paper_e15_u512()), Ok(()));
        assert_eq!(validate_sort_config(&SortConfig::paper_e17_u256()), Ok(()));
    }

    #[test]
    fn bad_shapes_are_typed() {
        // u not a multiple of w = 32.
        let c = SortConfig::with_params(SortParams::new(5, 48));
        assert!(matches!(validate_sort_config(&c), Err(SortError::InvalidConfig { .. })));
        // E > w.
        let c = SortConfig::with_params(SortParams::new(33, 64));
        assert!(matches!(validate_sort_config(&c), Err(SortError::InvalidConfig { .. })));
        // u not a power of two.
        let c = SortConfig::with_params(SortParams::new(5, 96));
        assert!(matches!(validate_sort_config(&c), Err(SortError::InvalidConfig { .. })));
    }

    #[test]
    fn oversized_block_is_unlaunchable() {
        // 2048 threads per block exceeds the device's 1024-thread limit.
        let c = SortConfig::with_params(SortParams::new(15, 2048));
        match validate_sort_config(&c) {
            Err(SortError::Unlaunchable { device, .. }) => {
                assert!(!device.is_empty());
            }
            other => panic!("expected Unlaunchable, got {other:?}"),
        }
    }

    #[test]
    fn errors_render_and_serialize() {
        let e = SortError::DeadlineExceeded { deadline_s: 0.001, needed_s: 0.002 };
        assert!(e.to_string().contains("deadline"));
        assert!(e.to_json().req("kind").is_ok());
        let d = Degradation::Fallback {
            from: SortAlgorithm::CfMerge,
            to: SortAlgorithm::ThrustMergesort,
            reason: "repeated block failure".into(),
        };
        assert!(d.to_string().contains("cf-merge"));
        assert!(d.to_json().req("kind").is_ok());
    }
}
