//! The key trait the pipelines are generic over.
//!
//! The paper evaluates 4-byte integer keys; the pipelines here are
//! generic over any [`SortKey`] so the library also supports 8-byte keys
//! and the packed `(key, index)` representation behind the stable
//! sort-by-key API ([`crate::sort::pairs`]).
//!
//! Bank accounting note: the simulator maps one element to one bank slot.
//! For 4-byte keys that is exactly NVIDIA's layout; for 8-byte keys it
//! models the 64-bit bank mode (8-byte banks) of CC ≥ 3.x-era shared
//! memory rather than a two-slot split — the conflict *structure* of the
//! algorithms is identical in either convention.

/// Keys the simulated pipelines can sort.
///
/// The [`FaultWord`](cfmerge_gpu_sim::fault::FaultWord) supertrait gives
/// the fault injector a bit pattern to corrupt; it costs nothing on
/// fault-free runs.
pub trait SortKey:
    Copy + Ord + Default + Send + Sync + cfmerge_gpu_sim::fault::FaultWord + 'static
{
    /// Padding sentinel, must compare ≥ every valid key (tiles are padded
    /// with it and the pad is truncated away after sorting).
    const MAX_SENTINEL: Self;
}

impl SortKey for u32 {
    const MAX_SENTINEL: Self = u32::MAX;
}

impl SortKey for u64 {
    const MAX_SENTINEL: Self = u64::MAX;
}

impl SortKey for u16 {
    const MAX_SENTINEL: Self = u16::MAX;
}

impl SortKey for i32 {
    const MAX_SENTINEL: Self = i32::MAX;
}

impl SortKey for i64 {
    const MAX_SENTINEL: Self = i64::MAX;
}

/// Order-preserving bijection `f32 → u32`: the classic GPU trick for
/// sorting floats on integer pipelines. The induced order equals
/// [`f32::total_cmp`] (IEEE totalOrder): `-NaN < -∞ < … < -0 < +0 < … <
/// +∞ < +NaN`.
#[must_use]
pub fn f32_to_ordered_u32(x: f32) -> u32 {
    let bits = x.to_bits();
    // Negative floats: flip all bits (reverses their order). Positive:
    // set the sign bit (moves them above all negatives).
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Inverse of [`f32_to_ordered_u32`].
#[must_use]
pub fn ordered_u32_to_f32(u: u32) -> f32 {
    let bits = if u & 0x8000_0000 != 0 { u & 0x7FFF_FFFF } else { !u };
    f32::from_bits(bits)
}

/// Sort `f32` keys on the simulated GPU (totalOrder semantics; NaNs sort
/// to the ends like [`f32::total_cmp`]). Convenience wrapper over the
/// integer pipeline via the order-preserving transform.
#[must_use]
pub fn simulate_sort_f32(
    input: &[f32],
    algo: super::pipeline::SortAlgorithm,
    config: &super::pipeline::SortConfig,
) -> super::pipeline::SortRun<f32> {
    let ints: Vec<u32> = input.iter().map(|&x| f32_to_ordered_u32(x)).collect();
    let run = super::pipeline::simulate_sort(&ints, algo, config);
    super::pipeline::SortRun {
        output: run.output.iter().map(|&u| ordered_u32_to_f32(u)).collect(),
        profile: run.profile,
        simulated_seconds: run.simulated_seconds,
        kernels: run.kernels,
        n: run.n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentinel_dominates<K: SortKey>(samples: &[K]) {
        for &s in samples {
            assert!(s <= K::MAX_SENTINEL);
        }
    }

    #[test]
    fn sentinels_dominate() {
        sentinel_dominates::<u32>(&[0, 1, u32::MAX]);
        sentinel_dominates::<u64>(&[0, u64::MAX]);
        sentinel_dominates::<u16>(&[0, u16::MAX]);
        sentinel_dominates::<i32>(&[i32::MIN, -1, 0, i32::MAX]);
        sentinel_dominates::<i64>(&[i64::MIN, 0, i64::MAX]);
    }

    fn interesting_floats() -> Vec<f32> {
        vec![
            f32::NEG_INFINITY,
            f32::MIN,
            -1.5,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.5,
            f32::MAX,
            f32::INFINITY,
            f32::NAN,
            -f32::NAN,
        ]
    }

    #[test]
    fn float_transform_roundtrips() {
        for x in interesting_floats() {
            let back = ordered_u32_to_f32(f32_to_ordered_u32(x));
            assert_eq!(x.to_bits(), back.to_bits(), "{x}");
        }
    }

    #[test]
    fn float_transform_matches_total_cmp() {
        let vals = interesting_floats();
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    f32_to_ordered_u32(a).cmp(&f32_to_ordered_u32(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn simulated_float_sort_matches_total_order() {
        use crate::params::SortParams;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xF10A7);
        let cfg = super::super::pipeline::SortConfig::with_params(SortParams::new(5, 32));
        let mut input: Vec<f32> = (0..2000).map(|_| f32::from_bits(rng.gen::<u32>())).collect();
        input.push(f32::NAN);
        input.push(-0.0);
        input.push(0.0);
        let run = simulate_sort_f32(&input, super::super::pipeline::SortAlgorithm::CfMerge, &cfg);
        let mut expect = input.clone();
        expect.sort_by(f32::total_cmp);
        assert_eq!(run.output.len(), expect.len());
        for (a, b) in run.output.iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
