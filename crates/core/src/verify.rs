//! Cheap output verification: sortedness plus order-independent multiset
//! checksums.
//!
//! The recovery driver (see [`crate::recovery`]) re-executes blocks whose
//! output fails verification, so the check must be (a) cheap — `O(n)` per
//! block, no allocation — and (b) *sound enough* that passing it implies
//! the output is exactly correct.
//!
//! The check is: **output is sorted** and **output's multiset checksum
//! equals the input's**. The checksum is the wrapping sum of a 64-bit
//! mix (SplitMix64's finalizer) of each key's bit pattern; summation
//! makes it order-independent (a multiset invariant) and *additive*:
//! `checksum(A ∪ B) = checksum(A) + checksum(B)` (wrapping), so a merge
//! block's expected checksum is computable from its input ranges without
//! materializing them.
//!
//! Soundness: if the output is a permutation of the input and sorted, it
//! *is* the unique sorted permutation — exactly correct. The checksum
//! admits collisions (a corrupted multiset hashing to the same sum), but
//! the mixer's avalanche makes that probability ≈ 2⁻⁶⁴ per check —
//! negligible against the simulator's deterministic fault plans, and the
//! same trade every production checksum scheme (ECC included) makes. For
//! tests, [`verify_sorted_permutation`] provides the exact oracle.

use crate::sort::key::SortKey;

/// SplitMix64 finalizer: the avalanche mix applied to each key's bits.
#[inline]
#[must_use]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent multiset checksum: wrapping sum of [`mix64`] over
/// each key's bit pattern. Additive across concatenation/union.
#[must_use]
pub fn multiset_checksum<K: SortKey>(keys: &[K]) -> u64 {
    keys.iter().fold(0u64, |acc, k| acc.wrapping_add(mix64(k.to_fault_bits())))
}

/// Why a block's output failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyFailure {
    /// `output[index] > output[index + 1]`.
    NotSorted {
        /// Index of the first inversion.
        index: usize,
    },
    /// The output's multiset checksum differs from the input's: keys were
    /// corrupted, lost, or duplicated.
    ChecksumMismatch {
        /// Checksum of the block's input ranges.
        expect: u64,
        /// Checksum of the block's output.
        got: u64,
    },
    /// Exact-oracle verdict: output is not a permutation of the input
    /// (only produced by [`verify_sorted_permutation`]).
    NotAPermutation,
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyFailure::NotSorted { index } => {
                write!(f, "output not sorted (first inversion at index {index})")
            }
            VerifyFailure::ChecksumMismatch { expect, got } => {
                write!(f, "multiset checksum mismatch (expect {expect:#018x}, got {got:#018x})")
            }
            VerifyFailure::NotAPermutation => write!(f, "output is not a permutation of the input"),
        }
    }
}

/// The production check: `output` sorted and matching `expect_checksum`
/// (computed from the block's input ranges via [`multiset_checksum`]'s
/// additivity). Passing implies the output is exactly the sorted
/// permutation of the input, up to checksum collision (≈ 2⁻⁶⁴).
pub fn verify_sorted_checksum<K: SortKey>(
    output: &[K],
    expect_checksum: u64,
) -> Result<(), VerifyFailure> {
    if let Some(i) = (1..output.len()).find(|&i| output[i - 1] > output[i]) {
        return Err(VerifyFailure::NotSorted { index: i - 1 });
    }
    let got = multiset_checksum(output);
    if got != expect_checksum {
        return Err(VerifyFailure::ChecksumMismatch { expect: expect_checksum, got });
    }
    Ok(())
}

/// Exact oracle (test harnesses): `output` is sorted *and* a true
/// permutation of `input` (sort-and-compare; `O(n log n)` and
/// allocating — not for the hot recovery path).
pub fn verify_sorted_permutation<K: SortKey>(
    input: &[K],
    output: &[K],
) -> Result<(), VerifyFailure> {
    if let Some(i) = (1..output.len()).find(|&i| output[i - 1] > output[i]) {
        return Err(VerifyFailure::NotSorted { index: i - 1 });
    }
    if input.len() != output.len() {
        return Err(VerifyFailure::NotAPermutation);
    }
    let mut expect = input.to_vec();
    expect.sort_unstable();
    if expect != output {
        return Err(VerifyFailure::NotAPermutation);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_independent_and_additive() {
        let a = [5u32, 1, 9, 9, 3];
        let mut shuffled = a;
        shuffled.reverse();
        assert_eq!(multiset_checksum(&a), multiset_checksum(&shuffled));
        let b = [7u32, 7];
        let both: Vec<u32> = a.iter().chain(&b).copied().collect();
        assert_eq!(
            multiset_checksum(&both),
            multiset_checksum(&a).wrapping_add(multiset_checksum(&b))
        );
    }

    #[test]
    fn checksum_detects_single_bit_flip_and_duplication() {
        let a = [5u32, 1, 9, 3];
        let mut flipped = a;
        flipped[2] ^= 1 << 7;
        assert_ne!(multiset_checksum(&a), multiset_checksum(&flipped));
        // Lost element replaced by a duplicate (the lane-dropout shape).
        let mut duped = a;
        duped[1] = duped[0];
        assert_ne!(multiset_checksum(&a), multiset_checksum(&duped));
    }

    #[test]
    fn sorted_checksum_verdicts() {
        let input = [4u32, 2, 8, 6];
        let expect = multiset_checksum(&input);
        assert_eq!(verify_sorted_checksum(&[2u32, 4, 6, 8], expect), Ok(()));
        assert!(matches!(
            verify_sorted_checksum(&[4u32, 2, 6, 8], expect),
            Err(VerifyFailure::NotSorted { index: 0 })
        ));
        assert!(matches!(
            verify_sorted_checksum(&[2u32, 4, 6, 9], expect),
            Err(VerifyFailure::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn permutation_oracle_verdicts() {
        let input = [3u32, 1, 2];
        assert_eq!(verify_sorted_permutation(&input, &[1, 2, 3]), Ok(()));
        assert!(verify_sorted_permutation(&input, &[1, 2, 4]).is_err());
        assert!(verify_sorted_permutation(&input, &[3, 1, 2]).is_err());
        assert!(verify_sorted_permutation(&input, &[1, 2]).is_err());
        let empty: [u32; 0] = [];
        assert_eq!(verify_sorted_permutation(&empty, &empty), Ok(()));
    }
}
