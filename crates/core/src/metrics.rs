//! Reporting helpers: throughput, speedups, and the summary statistics
//! quoted in Section 5.1.

use cfmerge_json::{FromJson, Json, JsonError, ToJson};

/// Why a reporting helper could not produce a number. Earlier revisions
/// silently emitted `0.0` for these cases, which poisoned downstream
/// averages; now the caller decides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricsError {
    /// A speedup summary over zero points.
    EmptySeries,
    /// Paired series of different lengths.
    MismatchedLengths {
        /// Points in the baseline series.
        baseline: usize,
        /// Points in the improved series.
        improved: usize,
    },
    /// A throughput over a zero, negative, or non-finite duration.
    NonPositiveSeconds {
        /// The offending duration.
        seconds: f64,
    },
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::EmptySeries => write!(f, "empty series: need at least one point"),
            MetricsError::MismatchedLengths { baseline, improved } => {
                write!(
                    f,
                    "paired series required: {baseline} baseline vs {improved} improved points"
                )
            }
            MetricsError::NonPositiveSeconds { seconds } => {
                write!(f, "non-positive duration: {seconds} s")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// Throughput in elements per microsecond — the unit of Figures 5 and 6.
///
/// # Errors
/// [`MetricsError::NonPositiveSeconds`] when `seconds` is zero, negative,
/// or not finite (a zero-duration "run" has no throughput; reporting
/// `0.0` would silently drag down sweep averages).
pub fn elements_per_us(n: usize, seconds: f64) -> Result<f64, MetricsError> {
    if !(seconds > 0.0 && seconds.is_finite()) {
        return Err(MetricsError::NonPositiveSeconds { seconds });
    }
    Ok(n as f64 / (seconds * 1e6))
}

/// One data point of a throughput series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Input size.
    pub n: usize,
    /// Simulated runtime in seconds.
    pub seconds: f64,
    /// Throughput in elements/µs.
    pub elems_per_us: f64,
}

impl ThroughputPoint {
    /// Build a point from `n` and a runtime.
    ///
    /// # Errors
    /// [`MetricsError::NonPositiveSeconds`] on a zero/negative/non-finite
    /// runtime.
    pub fn new(n: usize, seconds: f64) -> Result<Self, MetricsError> {
        Ok(Self { n, seconds, elems_per_us: elements_per_us(n, seconds)? })
    }
}

impl ToJson for ThroughputPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            ("seconds", Json::from(self.seconds)),
            ("elems_per_us", Json::from(self.elems_per_us)),
        ])
    }
}

impl FromJson for ThroughputPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            n: v.field("n")?,
            seconds: v.field("seconds")?,
            elems_per_us: v.field("elems_per_us")?,
        })
    }
}

/// The speedup summary the paper reports for Figure 5: "average, mean, and
/// maximum speedup" over the sweep (the paper's "average" is the ratio of
/// summed runtimes — i.e. total-work speedup — while "mean" is the mean of
/// per-size speedups).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupSummary {
    /// Σ baseline time / Σ improved time.
    pub average: f64,
    /// Mean of pointwise speedups.
    pub mean: f64,
    /// Largest pointwise speedup.
    pub max: f64,
    /// Smallest pointwise speedup.
    pub min: f64,
}

impl ToJson for SpeedupSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("average", Json::from(self.average)),
            ("mean", Json::from(self.mean)),
            ("max", Json::from(self.max)),
            ("min", Json::from(self.min)),
        ])
    }
}

impl FromJson for SpeedupSummary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            average: v.field("average")?,
            mean: v.field("mean")?,
            max: v.field("max")?,
            min: v.field("min")?,
        })
    }
}

/// Summarize baseline-vs-improved runtimes (paired by index).
///
/// # Errors
/// [`MetricsError::MismatchedLengths`] when the series pair unevenly,
/// [`MetricsError::EmptySeries`] on zero points, and
/// [`MetricsError::NonPositiveSeconds`] when any runtime is zero,
/// negative, or non-finite (the ratios would be meaningless).
pub fn speedup_summary(
    baseline_s: &[f64],
    improved_s: &[f64],
) -> Result<SpeedupSummary, MetricsError> {
    if baseline_s.len() != improved_s.len() {
        return Err(MetricsError::MismatchedLengths {
            baseline: baseline_s.len(),
            improved: improved_s.len(),
        });
    }
    if baseline_s.is_empty() {
        return Err(MetricsError::EmptySeries);
    }
    if let Some(&seconds) =
        baseline_s.iter().chain(improved_s).find(|s| !(**s > 0.0 && s.is_finite()))
    {
        return Err(MetricsError::NonPositiveSeconds { seconds });
    }
    let total_base: f64 = baseline_s.iter().sum();
    let total_impr: f64 = improved_s.iter().sum();
    let ratios: Vec<f64> = baseline_s.iter().zip(improved_s).map(|(b, i)| b / i).collect();
    Ok(SpeedupSummary {
        average: total_base / total_impr,
        mean: ratios.iter().sum::<f64>() / ratios.len() as f64,
        max: ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        min: ratios.iter().cloned().fold(f64::INFINITY, f64::min),
    })
}

/// Format a simple aligned text table (the bench binaries print these;
/// EXPERIMENTS.md embeds them).
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line
    };
    let hdr: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_units() {
        // 1e6 elements in 1 ms = 1000 elements/µs.
        assert!((elements_per_us(1_000_000, 1e-3).unwrap() - 1000.0).abs() < 1e-9);
        let p = ThroughputPoint::new(2_000_000, 1e-3).unwrap();
        assert!((p.elems_per_us - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn non_positive_seconds_are_typed_errors() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(elements_per_us(100, bad), Err(MetricsError::NonPositiveSeconds { .. })),
                "expected typed error for {bad}"
            );
            assert!(ThroughputPoint::new(100, bad).is_err());
        }
    }

    #[test]
    fn speedup_summary_math() {
        let base = [2.0, 3.0, 4.0];
        let imp = [1.0, 3.0, 2.0];
        let s = speedup_summary(&base, &imp).unwrap();
        assert!((s.average - 9.0 / 6.0).abs() < 1e-12);
        assert!((s.mean - (2.0 + 1.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!((s.max - 2.0).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_speedup_inputs_are_typed_errors() {
        assert_eq!(
            speedup_summary(&[1.0], &[1.0, 2.0]),
            Err(MetricsError::MismatchedLengths { baseline: 1, improved: 2 })
        );
        assert_eq!(speedup_summary(&[], &[]), Err(MetricsError::EmptySeries));
        assert_eq!(
            speedup_summary(&[1.0], &[0.0]),
            Err(MetricsError::NonPositiveSeconds { seconds: 0.0 })
        );
        // The errors render human-readably for bench-bin diagnostics.
        assert!(MetricsError::EmptySeries.to_string().contains("empty series"));
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["n", "thrust", "cf"],
            &[
                vec!["1024".into(), "12.5".into(), "12.4".into()],
                vec!["2048".into(), "13.0".into(), "13.1".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("thrust"));
        assert!(lines[2].trim_start().starts_with("1024"));
    }
}
