//! The certified auto-tuner: a per-device **degradation ladder** built
//! from prover certificates, occupancy, and the timing model.
//!
//! The ROADMAP's auto-tuner item names `results/certificates.json` as
//! the contract: the prover already pins, per (E, u, device profile),
//! exactly which shared-memory phases are conflict-free, which carry a
//! certified worst-case degree bound, and which it cannot certify at
//! all. This module turns that table into an executable policy:
//!
//! 1. [`search::build_tuning_table`] walks the certified (E, u,
//!    device-profile) lattice and ranks every launchable configuration
//!    into a [`TuningLadder`] — certified-conflict-free rungs first
//!    (ordered by modeled cost), then certified *bounded-degree* rungs
//!    (the `degraded` tier), with everything the prover cannot bound
//!    listed as `excluded` and never eligible to run.
//! 2. The [`TuningTable`] artifact (`results/tuning.json`) is
//!    versioned and checksummed; [`TuningTable::verify`] fails closed
//!    on schema or checksum mismatch, so a corrupted table can never
//!    route a job.
//! 3. `SortService::enable_tuning` /
//!    `ClusterService::enable_tuning` select launch configs from the
//!    ladder at admission, open breakers step *down* the ladder
//!    instead of jumping to the hardcoded
//!    [`SortParams::known_good_default`](crate::params::SortParams::known_good_default),
//!    and a deterministic [`CanaryPolicy`] probes a candidate rung on
//!    a fixed job cadence with automatic rollback on verification
//!    failure.
//!
//! Everything is off by default: a service without `enable_tuning`
//! behaves bit-identically to the pre-tuner service, which is what
//! keeps every pinned artifact stable.

pub mod canary;
pub mod search;
pub mod table;

pub use canary::{CanaryPolicy, TuningPolicy};
pub use search::{build_tuning_table, modeled_cost_s, TUNING_REF_N};
pub use table::{
    ExcludedConfig, RungTier, TuningLadder, TuningRung, TuningTable, ValidationScenario,
    TUNING_SCHEMA_VERSION,
};
