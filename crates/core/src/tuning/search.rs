//! The offline tuner search: certificate verdicts × occupancy × the
//! timing model → ranked degradation ladders.

use cfmerge_gpu_sim::device::Device;
use cfmerge_gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources, Occupancy};
use cfmerge_gpu_sim::timing::TimingModel;

use crate::cert::{device_profiles, CertRecord, CertificateTable};
use crate::params::SortParams;
use crate::recovery::pipeline_shape;
use crate::tuning::table::{
    ExcludedConfig, RungTier, TuningLadder, TuningRung, TuningTable, TUNING_SCHEMA_VERSION,
};

/// Reference sort size the ladder's modeled costs are priced at. The
/// ladder orders configurations, so only the *relative* costs matter;
/// 2^20 keys is deep enough that both the bandwidth and the
/// shared-memory terms are exercised.
pub const TUNING_REF_N: usize = 1 << 20;

/// Worst certified conflict degree the `certified` tier tolerates: the
/// paper's CF-Merge writeback bound (every other certifiable phase must
/// be fully conflict-free, degree 1).
pub const CERTIFIED_MAX_DEGREE: u32 = 2;

/// Phases whose `not-certifiable` verdict does **not** disqualify a
/// configuration: the merge-path binary search reads O(log tile)
/// data-dependent addresses per merge — negligible traffic the paper
/// itself excludes from the conflict analysis. Every *other*
/// uncertifiable phase (Thrust's serial merge above all) moves the bulk
/// of the data with no certified degree bound, and the tuner fails
/// closed on it.
const UNBOUNDED_EXEMPT_PHASES: &[&str] = &["merge-path-search"];

/// Deterministic modeled cost of a [`TUNING_REF_N`]-key sort at one
/// launch configuration: per merge pass, the launch overhead plus one
/// read and one write of the padded buffer at occupancy-scaled
/// effective bandwidth, plus the shared-memory transaction stream
/// serialized by the certified worst conflict degree. A heuristic
/// *ranking* price (the real run is priced exactly by the timing
/// model), but a pure function of its arguments — the ladder order is
/// reproducible everywhere.
#[must_use]
pub fn modeled_cost_s(
    dev: &Device,
    timing: &TimingModel,
    params: SortParams,
    worst_degree: u32,
    occ: &Occupancy,
) -> f64 {
    let shape = pipeline_shape(TUNING_REF_N, &params);
    if shape.is_empty() {
        return 0.0;
    }
    let passes = shape.len() as f64;
    let n_pad = shape[0] as usize * params.tile();
    let bytes_per_pass = (n_pad * 2 * std::mem::size_of::<u32>()) as f64;
    let occ_frac = occ.fraction.max(1e-6);
    let bw =
        dev.mem_bandwidth * timing.bw_efficiency_full * occ_frac.powf(timing.bw_occupancy_exponent);
    let mem_s = passes * (timing.launch_overhead_s + bytes_per_pass / bw);
    // One shared transaction per warp per key moved, serialized
    // `worst_degree`-fold in the certified worst case, spread over the
    // SMs the occupancy actually fills.
    let tx_per_pass = (n_pad as f64 / f64::from(dev.warp_width)) * f64::from(worst_degree);
    let shared_s = passes * tx_per_pass * timing.shared_tx_cycles
        / (dev.clock_hz * f64::from(dev.sm_count) * occ_frac);
    mem_s + shared_s
}

/// How one (E, u) cell of the certificate table classifies.
enum CellVerdict {
    Eligible { tier: RungTier, worst_degree: u32 },
    Excluded { reason: String },
}

/// Classify one configuration from its certificate records (all records
/// sharing the cell's profile/algo/E/u).
fn classify_cell(records: &[&CertRecord]) -> CellVerdict {
    for r in records {
        if !r.pass {
            return CellVerdict::Excluded {
                reason: format!(
                    "certificate failure: {}/{} verdict `{}` (expected {})",
                    r.kernel, r.phase, r.verdict, r.expected
                ),
            };
        }
    }
    for r in records {
        if r.verdict == "not-certifiable" && !UNBOUNDED_EXEMPT_PHASES.contains(&r.phase.as_str()) {
            return CellVerdict::Excluded {
                reason: format!(
                    "uncertifiable data-dependent phase {}/{}: no degree bound to degrade onto",
                    r.kernel, r.phase
                ),
            };
        }
    }
    let worst_degree = records
        .iter()
        .filter(|r| r.verdict != "not-certifiable")
        .map(|r| r.worst_degree)
        .max()
        .unwrap_or(1)
        .max(1);
    let tier =
        if worst_degree <= CERTIFIED_MAX_DEGREE { RungTier::Certified } else { RungTier::Degraded };
    CellVerdict::Eligible { tier, worst_degree }
}

/// Build the tuning table from a certificate table: for every (device
/// profile, pipeline) pair present, rank the certified configurations
/// into a degradation ladder and record the exclusions. Deterministic —
/// the same certificate table always yields byte-identical ladders
/// (ties in modeled cost are broken by (E, u), though none exist on the
/// current lattice).
#[must_use]
pub fn build_tuning_table(cert: &CertificateTable) -> TuningTable {
    let timing = TimingModel::rtx2080ti_like();
    let mut ladders = Vec::new();
    for profile in device_profiles() {
        // Pipelines in first-appearance order for this profile.
        let mut algos: Vec<&str> = Vec::new();
        for r in cert.records.iter().filter(|r| r.profile == profile.name) {
            if !algos.contains(&r.algo.as_str()) {
                algos.push(&r.algo);
            }
        }
        for algo in algos {
            let mut configs: Vec<(usize, usize)> = Vec::new();
            for r in &cert.records {
                if r.profile == profile.name && r.algo == algo && !configs.contains(&(r.e, r.u)) {
                    configs.push((r.e, r.u));
                }
            }
            let mut eligible: Vec<TuningRung> = Vec::new();
            let mut excluded: Vec<ExcludedConfig> = Vec::new();
            for (e, u) in configs {
                let params = SortParams::new(e, u);
                let records: Vec<&CertRecord> = cert
                    .records
                    .iter()
                    .filter(|r| r.profile == profile.name && r.algo == algo && r.e == e && r.u == u)
                    .collect();
                let res = BlockResources {
                    threads: u as u32,
                    shared_bytes: params.shared_bytes(),
                    regs_per_thread: mergesort_regs_estimate(e as u32),
                };
                let occ = match occupancy(&profile.device, &res) {
                    Ok(occ) => occ,
                    Err(why) => {
                        excluded.push(ExcludedConfig {
                            e,
                            u,
                            reason: format!("unlaunchable on {}: {why}", profile.name),
                        });
                        continue;
                    }
                };
                match classify_cell(&records) {
                    CellVerdict::Eligible { tier, worst_degree } => {
                        eligible.push(TuningRung {
                            rank: 0, // assigned after sorting
                            e,
                            u,
                            tier,
                            worst_degree,
                            occupancy: occ.fraction,
                            modeled_cost_s: modeled_cost_s(
                                &profile.device,
                                &timing,
                                params,
                                worst_degree,
                                &occ,
                            ),
                        });
                    }
                    CellVerdict::Excluded { reason } => {
                        excluded.push(ExcludedConfig { e, u, reason });
                    }
                }
            }
            // Certified tier first, each tier by modeled cost; (E, u)
            // breaks exact-cost ties so the order is total.
            eligible.sort_by(|a, b| {
                let tier_key = |r: &TuningRung| u8::from(r.tier == RungTier::Degraded);
                tier_key(a)
                    .cmp(&tier_key(b))
                    .then(a.modeled_cost_s.total_cmp(&b.modeled_cost_s))
                    .then((a.e, a.u).cmp(&(b.e, b.u)))
            });
            for (rank, rung) in eligible.iter_mut().enumerate() {
                rung.rank = rank;
            }
            ladders.push(TuningLadder {
                profile: profile.name.to_string(),
                device: profile.device.name.clone(),
                algo: algo.to_string(),
                rungs: eligible,
                excluded,
            });
        }
    }
    let checksum = TuningTable::compute_checksum(&ladders);
    TuningTable {
        schema: TUNING_SCHEMA_VERSION,
        cert_schema: cert.schema,
        checksum,
        ladders,
        validation: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::build_certificate_table;
    use crate::tuning::table::RungTier;

    #[test]
    fn ladders_match_the_certified_lattice() {
        let cert = build_certificate_table();
        let table = build_tuning_table(&cert);
        assert!(table.verify().is_ok());
        // 3 profiles × 2 pipelines.
        assert_eq!(table.ladders.len(), 6);

        let rtx = Device::rtx2080ti();
        let cf = table.ladder_for(&rtx.name, "cf-merge").expect("cf ladder");
        // Certified: the two coprime presets, both at the paper's
        // degree-2 writeback bound. E=17,u=256 outranks E=15,u=512 at
        // the 2^20-key reference size because the driver pads the run
        // count to a power of two and the 7680-key tile pays far more
        // padding (256×7680 vs 256×4352 keys) than its occupancy edge
        // recovers. The non-coprime E=16 is *excluded*, not degraded:
        // its merge-pass permuting load is data-dependent with no
        // certified degree bound at all.
        assert_eq!(
            cf.rungs.iter().map(|r| (r.e, r.u)).collect::<Vec<_>>(),
            vec![(17, 256), (15, 512)]
        );
        assert!(cf.rungs.iter().all(|r| r.tier == RungTier::Certified && r.worst_degree == 2));
        assert!(cf.rungs[0].modeled_cost_s < cf.rungs[1].modeled_cost_s);
        assert!((cf.rungs[1].occupancy - 1.0).abs() < 1e-12);
        assert_eq!(cf.excluded.len(), 1);
        assert_eq!((cf.excluded[0].e, cf.excluded[0].u), (16, 256));
        assert!(cf.excluded[0].reason.contains("permuting-load"));

        // Thrust's serial merge has no certified degree bound: every
        // configuration fails closed.
        let thrust = table.ladder_for(&rtx.name, "thrust").expect("thrust ladder");
        assert!(thrust.rungs.is_empty());
        assert_eq!(thrust.excluded.len(), 3);
        assert!(thrust.excluded.iter().all(|x| x.reason.contains("serial-merge")));

        // 64-bit banks break the paper's degree-2 writeback bound: the
        // whole cf ladder drops to the degraded tier (Afshani–Sitchinava's
        // width effect), but stays runnable with a certified degree-4
        // bound — the profile the degradation-ladder scenarios exercise.
        let kepler = Device::kepler_64bit_like();
        let kcf = table.ladder_for(&kepler.name, "cf-merge").expect("kepler cf ladder");
        assert_eq!(
            kcf.rungs.iter().map(|r| (r.e, r.u)).collect::<Vec<_>>(),
            vec![(17, 256), (15, 512)]
        );
        assert!(kcf.rungs.iter().all(|r| r.tier == RungTier::Degraded && r.worst_degree == 4));
    }

    #[test]
    fn modeled_cost_penalizes_degree_and_rewards_occupancy() {
        let dev = Device::rtx2080ti();
        let timing = TimingModel::rtx2080ti_like();
        let params = SortParams::e15_u512();
        let res = BlockResources {
            threads: 512,
            shared_bytes: params.shared_bytes(),
            regs_per_thread: mergesort_regs_estimate(15),
        };
        let occ = occupancy(&dev, &res).unwrap();
        let base = modeled_cost_s(&dev, &timing, params, 1, &occ);
        let conflicted = modeled_cost_s(&dev, &timing, params, 16, &occ);
        assert!(conflicted > base);
        let half = Occupancy { fraction: occ.fraction / 2.0, ..occ };
        assert!(modeled_cost_s(&dev, &timing, params, 1, &half) > base);
    }
}
