//! The versioned, checksummed tuning-table artifact and its ladders.

use cfmerge_json::{FromJson, Json, JsonError, ToJson};

use crate::params::SortParams;

/// Version of the `results/tuning.json` schema. Bump on any change to
/// the record layout — the service fails closed on a mismatch.
pub const TUNING_SCHEMA_VERSION: u32 = 1;

/// Which certification tier a rung sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RungTier {
    /// Every certifiable shared-memory phase is conflict-free up to the
    /// paper's writeback bound (worst certified degree ≤ 2).
    Certified,
    /// Every phase carries a *certified finite* degree bound, but some
    /// bound exceeds the conflict-free tier; jobs routed here come back
    /// with an explicit `degraded` marker.
    Degraded,
}

impl RungTier {
    /// Stable label used in artifacts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RungTier::Certified => "certified",
            RungTier::Degraded => "degraded",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "certified" => Ok(RungTier::Certified),
            "degraded" => Ok(RungTier::Degraded),
            other => Err(JsonError::new(format!("unknown rung tier `{other}`"))),
        }
    }
}

/// One rung of a degradation ladder: a launch configuration the
/// certificates allow, ranked by modeled cost within its tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningRung {
    /// Position on the ladder (0 = best; ties impossible, ranks dense).
    pub rank: usize,
    /// Elements per thread.
    pub e: usize,
    /// Threads per block.
    pub u: usize,
    /// Certification tier.
    pub tier: RungTier,
    /// The worst certified conflict degree across the config's
    /// certifiable phases (1 = fully conflict-free, 2 = the paper's
    /// writeback bound).
    pub worst_degree: u32,
    /// Theoretical occupancy fraction on the ladder's device.
    pub occupancy: f64,
    /// Deterministic modeled cost of a [`TUNING_REF_N`]-key sort at this
    /// rung (see [`modeled_cost_s`]); the ladder's sort key.
    ///
    /// [`TUNING_REF_N`]: crate::tuning::TUNING_REF_N
    /// [`modeled_cost_s`]: crate::tuning::modeled_cost_s
    pub modeled_cost_s: f64,
}

impl TuningRung {
    /// The rung's launch parameters.
    #[must_use]
    pub fn params(&self) -> SortParams {
        SortParams::new(self.e, self.u)
    }
}

impl ToJson for TuningRung {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", Json::from(self.rank)),
            ("e", Json::from(self.e)),
            ("u", Json::from(self.u)),
            ("tier", Json::from(self.tier.label())),
            ("worst_degree", Json::from(self.worst_degree)),
            ("occupancy", Json::from(self.occupancy)),
            ("modeled_cost_s", Json::from(self.modeled_cost_s)),
        ])
    }
}

impl FromJson for TuningRung {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            rank: v.field("rank")?,
            e: v.field("e")?,
            u: v.field("u")?,
            tier: RungTier::parse(&v.field::<String>("tier")?)?,
            worst_degree: v.field("worst_degree")?,
            occupancy: v.field("occupancy")?,
            modeled_cost_s: v.field("modeled_cost_s")?,
        })
    }
}

/// A configuration the tuner refused to put on the ladder, and why —
/// the fail-closed side of the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcludedConfig {
    /// Elements per thread.
    pub e: usize,
    /// Threads per block.
    pub u: usize,
    /// Human-readable exclusion reason (uncertifiable phase, certificate
    /// failure, or unlaunchable resources).
    pub reason: String,
}

impl ToJson for ExcludedConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("e", Json::from(self.e)),
            ("u", Json::from(self.u)),
            ("reason", Json::from(self.reason.as_str())),
        ])
    }
}

impl FromJson for ExcludedConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self { e: v.field("e")?, u: v.field("u")?, reason: v.field("reason")? })
    }
}

/// The per-(device profile, pipeline) degradation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningLadder {
    /// Short profile name (`rtx2080ti`, `a100_like`, …).
    pub profile: String,
    /// The device's marketing name — services match on this, so a
    /// ladder can never be applied to a different device by accident.
    pub device: String,
    /// Pipeline label (`cf-merge`, `thrust`).
    pub algo: String,
    /// Eligible rungs, best first: the certified tier ordered by modeled
    /// cost, then the degraded tier ordered by modeled cost.
    pub rungs: Vec<TuningRung>,
    /// Configurations that must never run, with reasons.
    pub excluded: Vec<ExcludedConfig>,
}

impl TuningLadder {
    /// The rung whose launch parameters are exactly `params`.
    #[must_use]
    pub fn rung_for(&self, params: SortParams) -> Option<&TuningRung> {
        self.rungs.iter().find(|r| r.e == params.e && r.u == params.u)
    }

    /// Count of rungs in `tier`.
    #[must_use]
    pub fn tier_count(&self, tier: RungTier) -> usize {
        self.rungs.iter().filter(|r| r.tier == tier).count()
    }
}

impl ToJson for TuningLadder {
    fn to_json(&self) -> Json {
        Json::obj([
            ("profile", Json::from(self.profile.as_str())),
            ("device", Json::from(self.device.as_str())),
            ("algo", Json::from(self.algo.as_str())),
            ("rungs", Json::arr(self.rungs.iter().map(ToJson::to_json))),
            ("excluded", Json::arr(self.excluded.iter().map(ToJson::to_json))),
        ])
    }
}

impl FromJson for TuningLadder {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            profile: v.field("profile")?,
            device: v.field("device")?,
            algo: v.field("algo")?,
            rungs: v.field("rungs")?,
            excluded: v.field("excluded")?,
        })
    }
}

/// One pinned validation scenario replayed by the `tune` bin against a
/// freshly built table (ladder step-down under a tripped breaker;
/// canary rollback). The event log is deterministic, so the pinned
/// artifact gates it bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationScenario {
    /// Scenario name.
    pub name: String,
    /// Whether every assertion held.
    pub pass: bool,
    /// Deterministic job-by-job event log.
    pub events: Vec<String>,
}

impl ToJson for ValidationScenario {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("pass", Json::from(self.pass)),
            ("events", Json::arr(self.events.iter().map(|e| Json::from(e.as_str())))),
        ])
    }
}

impl FromJson for ValidationScenario {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self { name: v.field("name")?, pass: v.field("pass")?, events: v.field("events")? })
    }
}

/// The versioned, checksummed tuning artifact (`results/tuning.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct TuningTable {
    /// [`TUNING_SCHEMA_VERSION`] at build time.
    pub schema: u32,
    /// The certificate-table schema the ladders were derived from.
    pub cert_schema: u32,
    /// FNV-1a 64 over the canonical JSON of `ladders`; services refuse
    /// a table whose checksum does not match its contents.
    pub checksum: String,
    /// One ladder per (device profile, pipeline).
    pub ladders: Vec<TuningLadder>,
    /// Pinned validation scenarios recorded by the `tune` bin (not
    /// covered by the checksum — they are evidence about the ladders,
    /// not part of them).
    pub validation: Vec<ValidationScenario>,
}

/// FNV-1a 64-bit over a string (same constants as the cluster shard
/// hash; offline, dependency-free).
fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl TuningTable {
    /// The checksum `ladders` should carry: FNV-1a 64 of their canonical
    /// pretty-printed JSON, rendered as `fnv1a64:<16 hex digits>`.
    #[must_use]
    pub fn compute_checksum(ladders: &[TuningLadder]) -> String {
        let canonical = Json::arr(ladders.iter().map(ToJson::to_json)).to_string_pretty();
        format!("fnv1a64:{:016x}", fnv1a64(&canonical))
    }

    /// Fail-closed integrity check: schema versions must match this
    /// build and the checksum must match the ladders.
    ///
    /// # Errors
    /// A human-readable reason the table must not be used.
    pub fn verify(&self) -> Result<(), String> {
        if self.schema != TUNING_SCHEMA_VERSION {
            return Err(format!(
                "tuning table schema v{} does not match this build's v{TUNING_SCHEMA_VERSION}",
                self.schema
            ));
        }
        let want = Self::compute_checksum(&self.ladders);
        if self.checksum != want {
            return Err(format!(
                "tuning table checksum mismatch: header says {}, ladders hash to {want}",
                self.checksum
            ));
        }
        Ok(())
    }

    /// The ladder for a device (by marketing name) and pipeline label.
    #[must_use]
    pub fn ladder_for(&self, device_name: &str, algo: &str) -> Option<&TuningLadder> {
        self.ladders.iter().find(|l| l.device == device_name && l.algo == algo)
    }
}

impl ToJson for TuningTable {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::from(self.schema)),
            ("cert_schema", Json::from(self.cert_schema)),
            ("checksum", Json::from(self.checksum.as_str())),
            ("ladders", Json::arr(self.ladders.iter().map(ToJson::to_json))),
        ];
        // Omitted when empty so a service-built table round-trips to the
        // same bytes whether or not it was ever validated.
        if !self.validation.is_empty() {
            pairs.push(("validation", Json::arr(self.validation.iter().map(ToJson::to_json))));
        }
        Json::obj(pairs)
    }
}

impl FromJson for TuningTable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            schema: v.field("schema")?,
            cert_schema: v.field("cert_schema")?,
            checksum: v.field("checksum")?,
            ladders: v.field("ladders")?,
            validation: v.field_opt("validation")?.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> TuningTable {
        let ladders = vec![TuningLadder {
            profile: "rtx2080ti".into(),
            device: "dev".into(),
            algo: "cf-merge".into(),
            rungs: vec![
                TuningRung {
                    rank: 0,
                    e: 15,
                    u: 512,
                    tier: RungTier::Certified,
                    worst_degree: 2,
                    occupancy: 1.0,
                    modeled_cost_s: 1e-3,
                },
                TuningRung {
                    rank: 1,
                    e: 16,
                    u: 256,
                    tier: RungTier::Degraded,
                    worst_degree: 16,
                    occupancy: 0.75,
                    modeled_cost_s: 2e-3,
                },
            ],
            excluded: vec![ExcludedConfig { e: 3, u: 96, reason: "uncertifiable".into() }],
        }];
        let checksum = TuningTable::compute_checksum(&ladders);
        TuningTable {
            schema: TUNING_SCHEMA_VERSION,
            cert_schema: 1,
            checksum,
            ladders,
            validation: Vec::new(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let t = small_table();
        let back = TuningTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json().to_string_pretty(), t.to_json().to_string_pretty());
    }

    #[test]
    fn verify_accepts_good_and_rejects_tampered() {
        let t = small_table();
        assert!(t.verify().is_ok());

        let mut bad_schema = t.clone();
        bad_schema.schema += 1;
        assert!(bad_schema.verify().unwrap_err().contains("schema"));

        let mut tampered = t.clone();
        tampered.ladders[0].rungs[0].worst_degree = 1;
        assert!(tampered.verify().unwrap_err().contains("checksum"));
    }

    #[test]
    fn validation_block_is_outside_the_checksum_and_omitted_when_empty() {
        let mut t = small_table();
        assert!(!t.to_json().to_string_pretty().contains("validation"));
        t.validation.push(ValidationScenario {
            name: "x".into(),
            pass: true,
            events: vec!["e".into()],
        });
        assert!(t.verify().is_ok(), "validation must not invalidate the checksum");
        let back = TuningTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn ladder_lookup_by_params_and_tier_counts() {
        let t = small_table();
        let l = t.ladder_for("dev", "cf-merge").unwrap();
        assert_eq!(l.rung_for(SortParams::e15_u512()).unwrap().rank, 0);
        assert!(l.rung_for(SortParams::e17_u256()).is_none());
        assert_eq!(l.tier_count(RungTier::Certified), 1);
        assert_eq!(l.tier_count(RungTier::Degraded), 1);
        assert!(t.ladder_for("other", "cf-merge").is_none());
    }
}
