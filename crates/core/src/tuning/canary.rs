//! Tuning policy: how a service consumes a [`TuningTable`], including
//! the deterministic canary rollout.
//!
//! [`TuningTable`]: crate::tuning::TuningTable

use crate::params::SortParams;

/// Deterministic canary rollout of a candidate rung.
///
/// Every `every`-th fresh job the ladder admits is routed to
/// `candidate` instead of the active rung — a fixed cadence, so replays
/// are bit-identical. A canary job that comes back degraded (a fallback
/// rescue) or failed rolls the candidate back immediately: it is
/// dropped and the active rung keeps serving. `promote_after`
/// consecutive canary successes promote the candidate to the active
/// rung. Canary outcomes never feed circuit breakers — a canary is an
/// experiment on the candidate, not evidence about the active config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryPolicy {
    /// The rung under trial. Must be on the job's ladder: a candidate
    /// the certificates do not cover is rolled back without ever
    /// executing (fail closed).
    pub candidate: SortParams,
    /// Cadence: jobs `every, 2·every, …` (1-based) run the candidate.
    pub every: u64,
    /// Consecutive successes required to promote the candidate.
    pub promote_after: u32,
}

impl CanaryPolicy {
    /// Whether the `count`-th admitted fresh job (1-based) is a canary.
    #[must_use]
    pub fn fires_on(&self, count: u64) -> bool {
        self.every > 0 && count.is_multiple_of(self.every)
    }
}

/// How a service consumes an installed tuning table. The default has no
/// canary: jobs run the active rung, breakers walk the ladder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuningPolicy {
    /// Optional canary rollout.
    pub canary: Option<CanaryPolicy>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canary_cadence_is_deterministic() {
        let p = CanaryPolicy { candidate: SortParams::e17_u256(), every: 3, promote_after: 2 };
        let fired: Vec<u64> = (1..=9).filter(|&c| p.fires_on(c)).collect();
        assert_eq!(fired, vec![3, 6, 9]);
        let zero = CanaryPolicy { every: 0, ..p };
        assert!((1..=9).all(|c| !zero.fires_on(c)));
    }
}
