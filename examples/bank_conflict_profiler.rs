//! Using the simulator as a standalone bank-conflict profiler: write any
//! kernel against the lock-step engine and get exact `nvprof`-style
//! counters — no GPU required.
//!
//! This example profiles three classic access patterns (unit stride,
//! coprime stride, power-of-two stride) and a small matrix transpose with
//! and without padding — the textbook bank-conflict fix the paper's
//! Section 2 surveys.
//!
//! Run with: `cargo run --release --example bank_conflict_profiler`

use cfmerge::gpu_sim::banks::BankModel;
use cfmerge::gpu_sim::block::BlockSim;
use cfmerge::gpu_sim::profiler::PhaseClass;

fn main() {
    let banks = BankModel::nvidia(); // 32 banks

    // --- 1. Strided reads -------------------------------------------------
    println!("strided warp reads (one warp, 32 lanes):");
    for stride in [1usize, 3, 15, 17, 2, 4, 8, 16, 32] {
        let mut block = BlockSim::<u32>::new(banks, 32, 32 * 33);
        block.phase(PhaseClass::Other, |tid, lane| {
            let _ = lane.ld(tid * stride);
        });
        let c = block.profile.phase(PhaseClass::Other);
        println!(
            "  stride {stride:>2}: {} transaction(s) per request ({} conflict(s))",
            c.shared_ld_transactions,
            c.bank_conflicts()
        );
    }

    // --- 2. Matrix transpose, the classic padding fix ----------------------
    // A 32×32 tile transposed through shared memory: writing columns hits
    // one bank per warp (31-way conflicts); padding the row length to 33
    // words makes it conflict-free.
    println!("\n32×32 shared-memory transpose:");
    for (label, row_pitch) in [("unpadded (pitch 32)", 32usize), ("padded   (pitch 33)", 33)] {
        let mut block = BlockSim::<u32>::new(banks, 32, 32 * row_pitch);
        // Each lane writes one column of the tile (the transpose store).
        block.phase(PhaseClass::Other, |tid, lane| {
            for row in 0..32 {
                lane.st(row * row_pitch + tid, (row * 32 + tid) as u32);
            }
        });
        // …and reads one row back.
        block.phase(PhaseClass::Other, |tid, lane| {
            for col in 0..32 {
                let _ = lane.ld(tid * row_pitch + col);
            }
        });
        let c = block.profile.phase(PhaseClass::Other);
        println!(
            "  {label}: {} requests → {} transactions ({} conflicts)",
            c.shared_requests(),
            c.shared_transactions(),
            c.bank_conflicts()
        );
    }

    // --- 3. The race detector ----------------------------------------------
    // The engine refuses kernels that would need a barrier on real
    // hardware. (Uncomment to see it panic.)
    //
    // let mut block = BlockSim::<u32>::new(banks, 32, 64);
    // block.phase(PhaseClass::Other, |tid, lane| {
    //     lane.st(tid, 1);
    //     let _ = lane.ld((tid + 1) % 32); // reads another lane's same-phase write
    // });
    println!("\n(see the commented-out section for the missing-barrier race detector)");
}
