//! A guided tour of the paper, section by section, each claim executed
//! live. Run with: `cargo run --release --example paper_tour`

use cfmerge::core::gather::{CfLayout, GatherSchedule, ThreadSplit};
use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::core::worst_case::{lockstep_baseline_conflicts, predicted_warp_conflicts};
use cfmerge::gpu_sim::banks::BankModel;
use cfmerge::gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources};
use cfmerge::numtheory::residue::{is_complete_residue_system, r_j, r_prime_j};

fn main() {
    println!("§2 Preliminaries — bank conflicts are a gcd phenomenon");
    let banks = BankModel::nvidia();
    for stride in [15usize, 17, 16] {
        let c = banks.strided_cost(0, stride as u32);
        println!(
            "  warp reads at stride {stride}: {} transaction(s)  (gcd({stride},32) = {})",
            c.transactions,
            cfmerge::numtheory::gcd(stride as u64, 32)
        );
    }

    println!("\n§3.1 Lemma 1 — coprime strides form complete residue systems");
    println!("  R_0 with E=15, w=32 is a CRS: {}", is_complete_residue_system(&r_j(0, 15, 32), 32));
    println!("  R_0 with E=16, w=32 is a CRS: {}", is_complete_residue_system(&r_j(0, 16, 32), 32));
    println!(
        "  §3.2 Corollary 3 — R'_0 with E=16 after the ρ re-alignment: {}",
        is_complete_residue_system(&r_prime_j(0, 16, 32), 32)
    );

    println!("\n§3 Algorithm 1 — one thread's gather schedule (w=32, E=15, a_i=7, |A_i|=4):");
    let layout = CfLayout::new(32, 15, 32 * 15, 100);
    let sched = GatherSchedule::new(layout, 0, ThreadSplit { a_begin: 7, a_len: 4 });
    for j in 0..5 {
        println!("  round {j}: {:?}", sched.round(j));
    }
    println!("  … exactly one element per round, A ascending / B descending.");

    println!("\n§4 Theorem 8 — worst-case conflicts per warp:");
    for e in [15usize, 16, 17] {
        println!(
            "  E={e}: predicted {}, lock-step measured {}",
            predicted_warp_conflicts(32, e),
            lockstep_baseline_conflicts(32, e, 4) / 4
        );
    }

    println!("\n§5 Experiments — the headline, at one size:");
    let params = SortParams::e15_u512();
    let cfg = SortConfig::paper_e15_u512();
    let n = 16 * params.tile();
    let worst = InputSpec::worst_case(params).generate(n);
    let random = InputSpec::UniformRandom { seed: 1 }.generate(n);
    let tw = simulate_sort(&worst, SortAlgorithm::ThrustMergesort, &cfg);
    let tr = simulate_sort(&random, SortAlgorithm::ThrustMergesort, &cfg);
    let cw = simulate_sort(&worst, SortAlgorithm::CfMerge, &cfg);
    println!(
        "  thrust worst {:.0} e/µs vs random {:.0} e/µs (slowdown {:.2}×)",
        tw.throughput(),
        tr.throughput(),
        tr.throughput() / tw.throughput()
    );
    println!(
        "  cf-merge on the same worst case: {:.0} e/µs, {} merge conflicts (the nvprof check)",
        cw.throughput(),
        cw.profile.merge_bank_conflicts()
    );

    let res = BlockResources {
        threads: 512,
        shared_bytes: params.shared_bytes(),
        regs_per_thread: mergesort_regs_estimate(15),
    };
    let occ = occupancy(&cfg.device, &res).expect("paper config launches");
    println!(
        "  §5 occupancy: E=15,u=512 → {:.0}% ({} blocks/SM)",
        occ.fraction * 100.0,
        occ.blocks_per_sm
    );
    println!("\nFull reproduction: see EXPERIMENTS.md and the cfmerge-bench binaries.");
}
