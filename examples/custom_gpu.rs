//! Simulating hypothetical hardware: the whole stack is parameterized by
//! the device, so "what if warps were 16 lanes?" or "what about a
//! bandwidth-starved part?" are one-line changes.
//!
//! Run with: `cargo run --release --example custom_gpu`

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{simulate_sort, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::device::Device;
use cfmerge::gpu_sim::occupancy::{mergesort_regs_estimate, occupancy, BlockResources};
use cfmerge::prelude::TimingModel;

fn main() {
    // A hypothetical 16-lane-warp GPU (w = 16 banks) with a quarter of
    // the 2080 Ti's bandwidth.
    let mut device = Device::rtx2080ti();
    device.name = "hypothetical 16-lane GPU".into();
    device.warp_width = 16;
    device.mem_bandwidth /= 4.0;

    // E must now be coprime with 16 for the baseline heuristic; pick 15.
    let params = SortParams::new(15, 256);
    let res = BlockResources {
        threads: params.u as u32,
        shared_bytes: params.shared_bytes(),
        regs_per_thread: mergesort_regs_estimate(params.e as u32),
    };
    let occ = occupancy(&device, &res).expect("custom device launches this config");
    println!(
        "{}: E={}, u={} → {} blocks/SM, {:.0}% occupancy (limited by {:?})",
        device.name,
        params.e,
        params.u,
        occ.blocks_per_sm,
        occ.fraction * 100.0,
        occ.limiter
    );

    let config =
        SortConfig { params, device, timing: TimingModel::rtx2080ti_like(), count_accesses: true };
    let n = 32 * params.tile();
    for spec in [
        InputSpec::UniformRandom { seed: 3 },
        InputSpec::WorstCase { w: 16, e: params.e, u: params.u },
    ] {
        let input = spec.generate(n);
        let thrust = simulate_sort(&input, SortAlgorithm::ThrustMergesort, &config);
        let cf = simulate_sort(&input, SortAlgorithm::CfMerge, &config);
        println!(
            "  {:<18} thrust {:7.0} e/µs ({} merge conflicts)   cf {:7.0} e/µs ({} merge conflicts)",
            spec.label(),
            thrust.throughput(),
            thrust.profile.merge_bank_conflicts(),
            cf.throughput(),
            cf.profile.merge_bank_conflicts(),
        );
        assert_eq!(cf.profile.merge_bank_conflicts(), 0);
    }
    println!("\nthe CF gather is conflict-free for any warp width: the number theory\nonly assumes w banks and E elements per thread.");
}
