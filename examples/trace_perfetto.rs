//! Minimal tracing walkthrough: simulate one small sort with tracing on,
//! print the conflict forensics, and write a Perfetto/chrome://tracing
//! JSON file to the current directory.
//!
//! Run with `cargo run --example trace_perfetto`, then load
//! `trace_example.perfetto.json` at <https://ui.perfetto.dev>.

use cfmerge::core::params::SortParams;
use cfmerge::core::sort::simulate_sort_traced;
use cfmerge::prelude::*;

fn main() {
    let cfg = SortConfig::with_params(SortParams::new(15, 128));
    let n = 8 * 15 * 128;
    let input = InputSpec::WorstCase { w: 32, e: 15, u: 128 }.generate(n);

    // Trace the Thrust-style baseline: its merge phases bank-conflict.
    let traced = simulate_sort_traced(&input, SortAlgorithm::ThrustMergesort, &cfg);
    println!("{}", traced.trace.forensics().report(3));
    println!(
        "modeled runtime: {:.1} µs over {} kernels, {} conflict rounds",
        traced.run.simulated_seconds * 1e6,
        traced.run.kernels.len(),
        traced.trace.conflict_rounds(),
    );

    // The CF-Merge pipeline on the same input records zero merge/gather
    // conflict rounds — the paper's headline, visible in the trace.
    let cf = simulate_sort_traced(&input, SortAlgorithm::CfMerge, &cfg);
    assert_eq!(cf.run.profile.merge_bank_conflicts(), 0);
    assert_eq!(cf.run.output, traced.run.output);

    let path = "trace_example.perfetto.json";
    std::fs::write(path, traced.trace.to_perfetto_string()).expect("write trace");
    println!("wrote {path} — open it in https://ui.perfetto.dev or chrome://tracing");
}
