//! Quickstart: sort on the simulated GPU with both pipelines and compare
//! their bank-conflict profiles.
//!
//! Run with: `cargo run --release --example quickstart`

use cfmerge::core::sort::SortAlgorithm::{CfMerge, ThrustMergesort};
use cfmerge::gpu_sim::profiler::PhaseClass;
use cfmerge::prelude::*;

fn main() {
    // 1 M uniform random keys, the paper's preferred software parameters
    // (E = 15 elements/thread, u = 512 threads/block) on an RTX 2080 Ti
    // model.
    let config = SortConfig::paper_e15_u512();
    let n = 1 << 20;
    let input = InputSpec::UniformRandom { seed: 42 }.generate(n);

    println!("sorting {n} keys with both pipelines …\n");
    for (algo, name) in [(ThrustMergesort, "Thrust baseline"), (CfMerge, "CF-Merge")] {
        let run = simulate_sort(&input, algo, &config);
        assert!(run.output.is_sorted());

        println!("{name}:");
        println!("  simulated time : {:.3} ms", run.simulated_seconds * 1e3);
        println!("  throughput     : {:.0} elements/µs", run.throughput());
        println!(
            "  bank conflicts : {} total, {} while merging ({:.2} per merge step)",
            run.profile.total_bank_conflicts(),
            run.profile.merge_bank_conflicts(),
            run.conflicts_per_merge_round(),
        );
        let merge = run.profile.phase(PhaseClass::Merge);
        let gather = run.profile.phase(PhaseClass::Gather);
        println!(
            "  merge phase    : {} requests → {} transactions; gather phase: {} → {}",
            merge.shared_ld_requests,
            merge.shared_ld_transactions,
            gather.shared_ld_requests,
            gather.shared_ld_transactions,
        );
        println!("  kernels        : {} launches", run.kernels.len());
        println!();
    }

    println!(
        "CF-Merge replaces the data-dependent serial merge with the load-balanced\n\
         dual subsequence gather: its merge-phase transactions equal its requests —\n\
         zero bank conflicts, on every input."
    );
}
