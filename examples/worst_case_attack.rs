//! Adversarial inputs: build the Section 4 worst-case permutation, watch
//! the Thrust baseline degrade, and verify CF-Merge doesn't care.
//!
//! Run with: `cargo run --release --example worst_case_attack`

use cfmerge::core::inputs::InputSpec;
use cfmerge::core::sort::SortAlgorithm::{CfMerge, ThrustMergesort};
use cfmerge::core::worst_case::{lockstep_baseline_conflicts, predicted_warp_conflicts};
use cfmerge::prelude::*;

fn main() {
    let config = SortConfig::paper_e15_u512();
    let (w, e, u) = (32usize, 15usize, 512usize);
    let n = 64 * e * u; // 64 tiles

    // Theorem 8: the closed-form worst-case conflict count per warp.
    println!(
        "Theorem 8 prediction for (w={w}, E={e}): {} conflicts per warp per merge",
        predicted_warp_conflicts(w, e)
    );
    println!(
        "lock-step DMM measurement on the constructed pair: {} per warp\n",
        lockstep_baseline_conflicts(w, e, 4) / 4
    );

    // Build the adversarial permutation and a random control.
    let worst = InputSpec::WorstCase { w, e, u }.generate(n);
    let random = InputSpec::UniformRandom { seed: 1 }.generate(n);

    let t_worst = simulate_sort(&worst, ThrustMergesort, &config);
    let t_rand = simulate_sort(&random, ThrustMergesort, &config);
    let c_worst = simulate_sort(&worst, CfMerge, &config);
    let c_rand = simulate_sort(&random, CfMerge, &config);

    println!("n = {n} keys:");
    println!("                      random        worst-case    slowdown");
    println!(
        "  Thrust baseline   {:8.0} e/µs  {:8.0} e/µs   {:.2}×",
        t_rand.throughput(),
        t_worst.throughput(),
        t_rand.throughput() / t_worst.throughput()
    );
    println!(
        "  CF-Merge          {:8.0} e/µs  {:8.0} e/µs   {:.2}×",
        c_rand.throughput(),
        c_worst.throughput(),
        c_rand.throughput() / c_worst.throughput()
    );
    println!(
        "\n  Thrust merge-phase conflicts: {} (random) vs {} (worst)",
        t_rand.profile.merge_bank_conflicts(),
        t_worst.profile.merge_bank_conflicts()
    );
    println!(
        "  CF-Merge merge-phase conflicts: {} and {} — input-independent",
        c_rand.profile.merge_bank_conflicts(),
        c_worst.profile.merge_bank_conflicts()
    );
    assert_eq!(c_worst.profile.merge_bank_conflicts(), 0);
    assert_eq!(t_worst.output, c_worst.output);
}
