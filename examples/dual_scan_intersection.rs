//! Beyond sorting: the paper's concluding observation says the
//! load-balanced dual subsequence gather converts *any* parallel
//! pair-of-arrays scan into a bank-conflict-free algorithm. This example
//! uses the generic `dual_scan_block` combinator to compute a merge-based
//! set-intersection count — and a stable key-value sort via the packed
//! 64-bit pipeline.
//!
//! Run with: `cargo run --release --example dual_scan_intersection`

use cfmerge::core::gather::simulate::permuted_tile;
use cfmerge::core::gather::{dual_scan_block, intersect_counts, CfLayout, ThreadSplit};
use cfmerge::core::params::SortParams;
use cfmerge::core::sort::{sort_pairs_stable, SortAlgorithm, SortConfig};
use cfmerge::gpu_sim::banks::BankModel;
use cfmerge::gpu_sim::block::BlockSim;
use cfmerge::gpu_sim::profiler::PhaseClass;
use cfmerge::mergepath::partition::partition_merge;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2025);
    let (w, e, u) = (32usize, 15usize, 64usize);
    let tile = u * e;

    // Two sorted arrays sharing about half their values.
    let mut a: Vec<u32> = (0..tile / 2).map(|_| rng.gen_range(0..2000)).collect();
    let mut b: Vec<u32> = (0..tile / 2).map(|_| rng.gen_range(0..2000)).collect();
    a.sort_unstable();
    b.sort_unstable();

    // Partition with merge path (same machinery as the sort), build the
    // permuted tile, and run the conflict-free intersection scan.
    let chunks = partition_merge(&a, &b, e);
    let splits: Vec<ThreadSplit> =
        chunks.iter().map(|c| ThreadSplit { a_begin: c.a_begin, a_len: c.a_len() }).collect();
    let layout = CfLayout::new(w, e, tile, a.len());
    let shared = permuted_tile(&a, &b, &layout);

    let mut block = BlockSim::<u32>::new(BankModel::new(w as u32), u, tile);
    block.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..e {
            lane.st(r * u + tid, shared[r * u + tid]);
        }
    });
    let counts = intersect_counts(&mut block, &layout, &splits);
    let total: u32 = counts.iter().sum();
    println!("per-thread |A_i ∩ B_i| over {} threads, total matches: {total}", counts.len());
    println!(
        "gather-phase bank conflicts: {} (always zero)",
        block.profile.phase(PhaseClass::Gather).bank_conflicts()
    );

    // A second consumer through the same combinator: per-thread maxima.
    let mut block2 = BlockSim::<u32>::new(BankModel::new(w as u32), u, tile);
    block2.phase(PhaseClass::LoadTile, |tid, lane| {
        for r in 0..e {
            lane.st(r * u + tid, shared[r * u + tid]);
        }
    });
    let maxima = dual_scan_block(&mut block2, &layout, &splits, |_tid, pair| {
        let m = pair.a.iter().chain(&pair.b).copied().max().unwrap_or(0);
        (m, (pair.a.len() + pair.b.len()) as u64)
    });
    println!("max over every thread's pair: {:?}", maxima.iter().max());

    // Stable key-value sorting via the packed 64-bit pipeline.
    let config = SortConfig::with_params(SortParams::new(15, 256));
    let n = 100_000usize;
    let keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    let values: Vec<u32> = (0..n as u32).collect();
    let r = sort_pairs_stable(&keys, &values, SortAlgorithm::CfMerge, &config);
    assert!(r.keys.is_sorted());
    println!(
        "\nstable sort-by-key of {n} pairs: {:.0} pairs/µs simulated, {} merge conflicts",
        r.run.throughput(),
        r.run.profile.merge_bank_conflicts()
    );
}
